//! Report rendering for the experiment harness.
//!
//! Every experiment driver returns structured data; this module renders it
//! as the aligned text tables the `experiments` binary prints, and as the
//! machine-readable JSON/CSV run reports the sweep and conformance engines
//! emit ([`ReportFormat`], [`sweep_text`], [`sweep_csv`],
//! [`conformance_text`], [`conformance_csv`], [`pareto_text`],
//! [`pareto_csv`], [`failures_text`], [`failures_csv`]; JSON goes through
//! `serde_json` on the already-`Serialize` report types).

use crate::conformance::{ConformanceReport, ParetoReport};
use crate::failures::{FailureReport, ModeOutcome};
use crate::sweep::SweepReport;
use coyote_obs::Snapshot;

/// Renders an aligned text table. The first row is the header.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a ratio with two decimals (the precision Table I uses).
pub fn ratio(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "inf".to_string()
    }
}

/// Formats a percentage with one decimal.
pub fn percent(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// A labelled series of (x, y) points — one line of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The (x, y) points in x order.
    pub points: Vec<(f64, f64)>,
}

/// Renders several series sharing the same x values as one table with an
/// `x` column followed by one column per series.
pub fn format_series(x_label: &str, series: &[Series]) -> String {
    let mut headers: Vec<&str> = vec![x_label];
    for s in series {
        headers.push(&s.label);
    }
    let xs: Vec<f64> = series
        .first()
        .map(|s| s.points.iter().map(|&(x, _)| x).collect())
        .unwrap_or_default();
    let rows: Vec<Vec<String>> = xs
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let mut row = vec![format!("{x:.1}")];
            for s in series {
                row.push(
                    s.points
                        .get(i)
                        .map(|&(_, y)| ratio(y))
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            row
        })
        .collect();
    format_table(&headers, &rows)
}

/// Output format of the `experiments` binary (`--format` flag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportFormat {
    /// Aligned human-readable tables (the default).
    #[default]
    Text,
    /// Pretty-printed JSON (the full structured result).
    Json,
    /// One comma-separated row per scenario/record.
    Csv,
}

impl std::str::FromStr for ReportFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Ok(Self::Text),
            "json" => Ok(Self::Json),
            "csv" => Ok(Self::Csv),
            other => Err(format!("unknown format {other:?} (expected json|csv|text)")),
        }
    }
}

/// Header of the CSV sweep report (one column per [`crate::sweep::SweepRecord`] field).
pub const SWEEP_CSV_HEADER: &str =
    "topology,model,heuristic,margin,effort,ecmp,base,coyote_oblivious,coyote_partial,wall_secs";

/// Renders a sweep report as CSV: one header line, one row per record, in
/// grid order. Ratios keep full `f64` precision so reports can be diffed
/// across runs/thread counts.
pub fn sweep_csv(report: &SweepReport) -> String {
    let mut out = String::from(SWEEP_CSV_HEADER);
    out.push('\n');
    for r in &report.records {
        out.push_str(&format!(
            "{},{},{},{},{:?},{},{},{},{},{:.6}\n",
            r.spec.topology,
            r.spec.model.name(),
            r.spec.heuristic.name(),
            r.spec.margin,
            r.spec.effort,
            r.ratios.ecmp,
            r.ratios.base,
            r.ratios.coyote_oblivious,
            r.ratios.coyote_partial,
            r.wall_secs,
        ));
    }
    out
}

/// Renders bare [`ProtocolRatios`](crate::scenario::ProtocolRatios) rows
/// (the margin figures and Table I) as CSV, full `f64` precision.
pub fn ratios_csv(rows: &[crate::scenario::ProtocolRatios]) -> String {
    let mut out = String::from("topology,margin,ecmp,base,coyote_oblivious,coyote_partial\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{}\n",
            r.topology, r.margin, r.ecmp, r.base, r.coyote_oblivious, r.coyote_partial,
        ));
    }
    out
}

/// Renders a sweep report as an aligned text table plus a timing footer.
pub fn sweep_text(report: &SweepReport) -> String {
    let rows: Vec<Vec<String>> = report
        .records
        .iter()
        .map(|r| {
            vec![
                r.spec.topology.clone(),
                r.spec.model.name().to_string(),
                format!("{:.1}", r.spec.margin),
                ratio(r.ratios.ecmp),
                ratio(r.ratios.base),
                ratio(r.ratios.coyote_oblivious),
                ratio(r.ratios.coyote_partial),
                format!("{:.2}s", r.wall_secs),
            ]
        })
        .collect();
    let mut out = format_table(
        &[
            "network",
            "model",
            "margin",
            "ECMP",
            "Base",
            "COYOTE obl.",
            "COYOTE par.know.",
            "wall",
        ],
        &rows,
    );
    out.push_str(&format!(
        "{} scenarios on {} thread(s): {:.2}s wall, {:.2}s cpu ({:.2}x speedup)\n",
        report.scenarios,
        report.threads,
        report.wall_secs,
        report.cpu_secs(),
        if report.wall_secs > 0.0 {
            report.cpu_secs() / report.wall_secs
        } else {
            1.0
        },
    ));
    out
}

/// Header of the CSV conformance report (one column per
/// [`crate::conformance::ConformanceRecord`] field, with the two simulated
/// matrices flattened).
pub const CONFORMANCE_CSV_HEADER: &str = "topology,model,heuristic,margin,effort,\
faithful,dags_match,max_split_error,fake_nodes,prefix_advertisements,compression,\
max_fake_nodes_per_destination,\
base_intended_util,base_realized_util,worst_intended_util,worst_realized_util,\
base_intended_drop,base_realized_drop,worst_intended_drop,worst_realized_drop,\
max_utilization_delta,drop_rate_delta,within_tolerance,wall_secs";

/// Renders a conformance report as CSV: one header line, one row per cell,
/// in grid order. Deltas and utilizations keep full `f64` precision so
/// reports can be diffed across runs/thread counts.
pub fn conformance_csv(report: &ConformanceReport) -> String {
    let mut out = String::from(CONFORMANCE_CSV_HEADER);
    out.push('\n');
    for r in &report.records {
        out.push_str(&format!(
            "{},{},{},{},{:?},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6}\n",
            r.spec.topology,
            r.spec.model.name(),
            r.spec.heuristic.name(),
            r.spec.margin,
            r.spec.effort,
            r.faithful,
            r.dags_match,
            r.max_split_error,
            r.fake_nodes,
            r.prefix_advertisements,
            r.compression,
            r.max_fake_nodes_per_destination,
            r.base.intended.max_utilization,
            r.base.realized.max_utilization,
            r.worst.intended.max_utilization,
            r.worst.realized.max_utilization,
            r.base.intended.drop_rate,
            r.base.realized.drop_rate,
            r.worst.intended.drop_rate,
            r.worst.realized.drop_rate,
            r.max_utilization_delta,
            r.drop_rate_delta,
            r.within_tolerance,
            r.wall_secs,
        ));
    }
    out
}

/// Renders a conformance report as an aligned text table plus a verdict
/// footer.
pub fn conformance_text(report: &ConformanceReport) -> String {
    let rows: Vec<Vec<String>> = report
        .records
        .iter()
        .map(|r| {
            vec![
                r.spec.topology.clone(),
                r.spec.model.name().to_string(),
                format!("{:.1}", r.spec.margin),
                if r.faithful { "yes" } else { "NO" }.to_string(),
                r.fake_nodes.to_string(),
                format!("{:.4}", r.max_split_error),
                format!("{:.4}", r.max_utilization_delta),
                format!("{:.4}", r.drop_rate_delta),
                if r.within_tolerance { "pass" } else { "FAIL" }.to_string(),
                format!("{:.2}s", r.wall_secs),
            ]
        })
        .collect();
    let mut out = format_table(
        &[
            "network",
            "model",
            "margin",
            "faithful",
            "fakes",
            "split err",
            "util Δ",
            "drop Δ",
            "verdict",
            "wall",
        ],
        &rows,
    );
    out.push_str(&format!(
        "{}/{} cells within tolerance {} (compression {}, {} fake nodes) on \
         {} thread(s): {:.2}s wall, {:.2}s cpu\n",
        report.pass_count(),
        report.cells,
        report.tolerance,
        report.compression,
        report.total_fake_nodes(),
        report.threads,
        report.wall_secs,
        report.cpu_secs(),
    ));
    out
}

/// Header of the CSV Pareto report (one column per
/// [`crate::conformance::ParetoPoint`] field).
pub const PARETO_CSV_HEADER: &str = "level,epsilon,fake_nodes,prefix_advertisements,\
fake_node_ratio,max_split_error,max_utilization_delta,cells_within_tolerance";

/// Renders a compression Pareto sweep as CSV: one header line, one row per
/// level, in the order the levels were swept. Full `f64` precision so
/// reports can be diffed across runs/thread counts.
pub fn pareto_csv(report: &ParetoReport) -> String {
    let mut out = String::from(PARETO_CSV_HEADER);
    out.push('\n');
    for p in &report.points {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            p.level,
            p.epsilon,
            p.fake_nodes,
            p.prefix_advertisements,
            p.fake_node_ratio,
            p.max_split_error,
            p.max_utilization_delta,
            p.cells_within_tolerance,
        ));
    }
    out
}

/// Renders a compression Pareto sweep as an aligned text table (the
/// fake-nodes-vs-split-error trade-off) plus a footer.
pub fn pareto_text(report: &ParetoReport) -> String {
    let rows: Vec<Vec<String>> = report
        .points
        .iter()
        .map(|p| {
            vec![
                p.level.clone(),
                p.fake_nodes.to_string(),
                p.prefix_advertisements.to_string(),
                format!("{:.3}", p.fake_node_ratio),
                format!("{:.4}", p.max_split_error),
                format!("{:.4}", p.max_utilization_delta),
                format!("{}/{}", p.cells_within_tolerance, report.cells),
            ]
        })
        .collect();
    let mut out = format_table(
        &[
            "level",
            "fakes",
            "adverts",
            "ratio",
            "split err",
            "util Δ",
            "pass",
        ],
        &rows,
    );
    out.push_str(&format!(
        "{} levels x {} cells, tolerance {}, on {} thread(s): {:.2}s wall\n",
        report.points.len(),
        report.cells,
        report.tolerance,
        report.threads,
        report.wall_secs,
    ));
    out
}

/// Column header of the failure-engine CSV export.
pub const FAILURES_CSV_HEADER: &str = "cell,topology,model,margin,event,verdict,\
    oblivious_util,oblivious_drop,oblivious_unrouted,\
    reoptimized_util,reoptimized_drop,degradation_ratio,\
    fake_lsa_delta,dead_demand_volume,unroutable_volume,wall_secs";

fn mode_csv(mode: &Option<ModeOutcome>) -> (String, String, String) {
    match mode {
        Some(m) => (
            format!("{:.6}", m.max_utilization),
            format!("{:.6}", m.sim.drop_rate),
            format!("{:.6}", m.sim.unrouted),
        ),
        None => ("".into(), "".into(), "".into()),
    }
}

/// Renders a failure report as CSV, one row per grid cell. Missing modes
/// (a captured reconvergence or re-optimization failure) render as empty
/// fields, never as NaN.
pub fn failures_csv(report: &FailureReport) -> String {
    let mut out = String::from(FAILURES_CSV_HEADER);
    out.push('\n');
    for r in &report.records {
        let (ou, od, ox) = mode_csv(&r.oblivious);
        let (ru, rd, _) = mode_csv(&r.reoptimized);
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{:.6},{:.6},{:.6}\n",
            r.cell,
            r.spec.topology,
            r.spec.model.name(),
            r.spec.margin,
            r.event.id(),
            r.outcome.name(),
            ou,
            od,
            ox,
            ru,
            rd,
            r.degradation_ratio
                .map(|d| format!("{d:.6}"))
                .unwrap_or_default(),
            r.fake_lsa_delta,
            r.dead_demand_volume,
            r.unroutable_volume,
            r.wall_secs,
        ));
    }
    out
}

/// Renders a failure report as an aligned text table plus a verdict footer
/// summarizing the within/degraded/unroutable split, the worst degradation
/// ratio, and the total lost demand volume.
pub fn failures_text(report: &FailureReport) -> String {
    let util = |m: &Option<ModeOutcome>| {
        m.as_ref()
            .map(|m| format!("{:.3}", m.max_utilization))
            .unwrap_or_else(|| "-".into())
    };
    let drop = |m: &Option<ModeOutcome>| {
        m.as_ref()
            .map(|m| format!("{:.4}", m.sim.drop_rate))
            .unwrap_or_else(|| "-".into())
    };
    let rows: Vec<Vec<String>> = report
        .records
        .iter()
        .map(|r| {
            vec![
                r.spec.topology.clone(),
                r.spec.model.name().to_string(),
                r.event.id(),
                util(&r.oblivious),
                drop(&r.oblivious),
                util(&r.reoptimized),
                r.degradation_ratio
                    .map(|d| format!("{d:.3}"))
                    .unwrap_or_else(|| "-".into()),
                r.fake_lsa_delta.to_string(),
                format!("{:.3}", r.dead_demand_volume + r.unroutable_volume),
                r.outcome.name().to_string(),
                format!("{:.2}s", r.wall_secs),
            ]
        })
        .collect();
    let mut out = format_table(
        &[
            "network",
            "model",
            "event",
            "obl util",
            "obl drop",
            "reopt util",
            "degr",
            "ΔLSA",
            "lost vol",
            "verdict",
            "wall",
        ],
        &rows,
    );
    out.push_str(&format!(
        "{} within / {} degraded / {} unroutable of {} cells, tolerance {}, \
         worst degradation {}, {:.3} demand units lost, on {} thread(s): \
         {:.2}s wall, {:.2}s cpu\n",
        report.within_count(),
        report.degraded_count(),
        report.unroutable_count(),
        report.cells,
        report.tolerance,
        report
            .worst_degradation_ratio()
            .map(|d| format!("{d:.3}"))
            .unwrap_or_else(|| "-".into()),
        report.lost_volume(),
        report.threads,
        report.wall_secs,
        report.cpu_secs(),
    ));
    out
}

/// Formats a nanosecond quantity as seconds with millisecond precision.
fn secs(nanos: u128) -> String {
    format!("{:.3}s", nanos as f64 / 1e9)
}

/// Renders the `--profile` footer appended to text reports: a per-stage
/// wall-time table (one row per span name, from the snapshot's `timings`
/// section) followed by the deterministic workload counters. Stages are
/// sorted by total time, counters alphabetically — the table answers
/// "where did the time go", the counters "how much work was that".
pub fn profile_text(snapshot: &Snapshot) -> String {
    let mut out = String::from("\n== profile: per-stage wall time ==\n");
    if snapshot.timings.is_empty() {
        out.push_str("(no spans recorded)\n");
    } else {
        let mut stages: Vec<(&String, &coyote_obs::HistogramSnapshot)> =
            snapshot.timings.iter().collect();
        stages.sort_by(|a, b| b.1.sum.cmp(&a.1.sum).then_with(|| a.0.cmp(b.0)));
        let rows: Vec<Vec<String>> = stages
            .iter()
            .map(|(name, h)| {
                vec![
                    (*name).clone(),
                    h.count.to_string(),
                    secs(h.sum),
                    secs(if h.count > 0 {
                        h.sum / h.count as u128
                    } else {
                        0
                    }),
                    secs(h.max as u128),
                ]
            })
            .collect();
        out.push_str(&format_table(
            &["stage", "calls", "total", "mean", "max"],
            &rows,
        ));
    }
    if !snapshot.counters.is_empty() {
        out.push_str("\n== profile: workload counters (deterministic) ==\n");
        let rows: Vec<Vec<String>> = snapshot
            .counters
            .iter()
            .map(|(name, v)| vec![name.clone(), v.to_string()])
            .collect();
        out.push_str(&format_table(&["counter", "value"], &rows));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::{ConformanceRecord, MatrixConformance, SimSummary};
    use crate::scenario::{BaseModel, Effort, ProtocolRatios, WeightHeuristic};
    use crate::sweep::{SweepRecord, SweepSpec};

    fn sample_report() -> SweepReport {
        let spec = SweepSpec {
            topology: "Abilene".into(),
            model: BaseModel::Gravity,
            margin: 2.0,
            heuristic: WeightHeuristic::InverseCapacity,
            effort: Effort::Quick,
        };
        SweepReport {
            threads: 2,
            scenarios: 1,
            wall_secs: 1.5,
            records: vec![SweepRecord {
                spec,
                ratios: ProtocolRatios {
                    topology: "Abilene".into(),
                    margin: 2.0,
                    ecmp: 1.5,
                    base: 1.25,
                    coyote_oblivious: 1.4,
                    coyote_partial: 1.2,
                },
                wall_secs: 2.5,
            }],
        }
    }

    fn sample_conformance_report(within: bool) -> ConformanceReport {
        let summary = |util: f64, drop: f64| SimSummary {
            offered: 10.0,
            delivered: 10.0 * (1.0 - drop),
            drop_rate: drop,
            max_utilization: util,
        };
        let spec = SweepSpec {
            topology: "Abilene".into(),
            model: BaseModel::Bimodal,
            margin: 2.0,
            heuristic: WeightHeuristic::InverseCapacity,
            effort: Effort::Quick,
        };
        ConformanceReport {
            threads: 2,
            cells: 1,
            tolerance: 0.05,
            compression: "off".into(),
            wall_secs: 1.0,
            records: vec![ConformanceRecord {
                spec,
                dags_match: true,
                max_split_error: 0.01,
                faithful: true,
                fake_nodes: 7,
                prefix_advertisements: 7,
                compression: "off".into(),
                max_fake_nodes_per_destination: 3,
                base: MatrixConformance {
                    intended: summary(0.8, 0.0),
                    realized: summary(0.81, 0.0),
                },
                worst: MatrixConformance {
                    intended: summary(1.0, 0.1),
                    realized: summary(1.0, 0.11),
                },
                max_utilization_delta: 0.01,
                drop_rate_delta: 0.01,
                within_tolerance: within,
                wall_secs: 2.0,
            }],
        }
    }

    #[test]
    fn conformance_csv_has_header_and_one_row_per_record() {
        let csv = conformance_csv(&sample_conformance_report(true));
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], CONFORMANCE_CSV_HEADER);
        assert_eq!(lines[1].split(',').count(), lines[0].split(',').count());
        assert!(lines[1].starts_with("Abilene,bimodal,reverse-capacities,2,"));
        assert!(lines[1].contains("true"));
    }

    #[test]
    fn conformance_text_renders_verdicts_and_footer() {
        let pass = conformance_text(&sample_conformance_report(true));
        assert!(pass.contains("Abilene"));
        assert!(pass.contains("pass"));
        assert!(pass
            .contains("1/1 cells within tolerance 0.05 (compression off, 7 fake nodes) on 2 thread(s)"));
        let fail = conformance_text(&sample_conformance_report(false));
        assert!(fail.contains("FAIL"));
        assert!(fail.contains("0/1 cells"));
    }

    fn sample_pareto_report() -> ParetoReport {
        let point = |level: &str, eps: f64, fakes: usize, ratio: f64, err: f64| {
            crate::conformance::ParetoPoint {
                level: level.into(),
                epsilon: eps,
                fake_nodes: fakes,
                prefix_advertisements: fakes + 2,
                fake_node_ratio: ratio,
                max_split_error: err,
                max_utilization_delta: err / 2.0,
                cells_within_tolerance: 1,
            }
        };
        ParetoReport {
            threads: 2,
            cells: 1,
            tolerance: 0.05,
            wall_secs: 3.0,
            points: vec![
                point("off", 0.0, 100, 1.0, 0.001),
                point("lossless", 0.0, 60, 0.6, 0.001),
                point("lossy(0.02)", 0.02, 8, 0.08, 0.018),
            ],
        }
    }

    #[test]
    fn pareto_csv_has_header_and_deterministic_row_order() {
        let csv = pareto_csv(&sample_pareto_report());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], PARETO_CSV_HEADER);
        // Rows come out in sweep order, one per level, same column count as
        // the header.
        assert!(lines[1].starts_with("off,0,100,102,1,"));
        assert!(lines[2].starts_with("lossless,0,60,62,0.6,"));
        assert!(lines[3].starts_with("lossy(0.02),0.02,8,10,0.08,"));
        for line in &lines[1..] {
            assert_eq!(line.split(',').count(), lines[0].split(',').count());
        }
    }

    #[test]
    fn pareto_text_renders_the_tradeoff_table() {
        let text = pareto_text(&sample_pareto_report());
        assert!(text.contains("level"));
        assert!(text.contains("lossy(0.02)"));
        assert!(text.contains("0.080"), "fake-node ratio column:\n{text}");
        assert!(text.contains("1/1"));
        assert!(text.contains("3 levels x 1 cells, tolerance 0.05, on 2 thread(s)"));
    }

    #[test]
    fn empty_pareto_sweep_renders_without_panicking() {
        let report = ParetoReport {
            threads: 1,
            cells: 0,
            tolerance: 0.05,
            wall_secs: 0.0,
            points: vec![],
        };
        let csv = pareto_csv(&report);
        assert_eq!(csv.lines().count(), 1, "header only");
        assert_eq!(csv.lines().next().unwrap(), PARETO_CSV_HEADER);
        let text = pareto_text(&report);
        assert!(text.contains("0 levels x 0 cells"));
    }

    #[test]
    fn report_format_parses_case_insensitively() {
        assert_eq!("JSON".parse::<ReportFormat>().unwrap(), ReportFormat::Json);
        assert_eq!("csv".parse::<ReportFormat>().unwrap(), ReportFormat::Csv);
        assert_eq!("Text".parse::<ReportFormat>().unwrap(), ReportFormat::Text);
        assert!("xml".parse::<ReportFormat>().is_err());
    }

    #[test]
    fn sweep_csv_has_header_and_one_row_per_record() {
        let csv = sweep_csv(&sample_report());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], SWEEP_CSV_HEADER);
        assert!(lines[1].starts_with("Abilene,gravity,reverse-capacities,2,"));
        assert_eq!(lines[1].split(',').count(), lines[0].split(',').count());
    }

    #[test]
    fn sweep_text_reports_speedup_footer() {
        let text = sweep_text(&sample_report());
        assert!(text.contains("Abilene"));
        assert!(text.contains("1 scenarios on 2 thread(s)"));
        assert!(text.contains("1.67x speedup"));
    }

    #[test]
    fn table_alignment_and_separator() {
        let out = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer-name".into(), "12.34".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("longer-name"));
        // Columns are right-aligned to the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn ratio_and_percent_formatting() {
        assert_eq!(ratio(1.2345), "1.23");
        assert_eq!(ratio(f64::INFINITY), "inf");
        assert_eq!(percent(0.256), "25.6%");
    }

    #[test]
    fn series_share_the_x_column() {
        let s = vec![
            Series {
                label: "ECMP".into(),
                points: vec![(1.0, 1.5), (2.0, 2.5)],
            },
            Series {
                label: "COYOTE".into(),
                points: vec![(1.0, 1.2), (2.0, 1.8)],
            },
        ];
        let out = format_series("margin", &s);
        assert!(out.contains("margin"));
        assert!(out.contains("ECMP"));
        assert!(out.contains("COYOTE"));
        assert!(out.contains("1.20"));
        assert!(out.contains("2.50"));
    }

    #[test]
    fn empty_series_render_without_panicking() {
        let out = format_series("x", &[]);
        assert!(out.contains('x'));
    }

    #[test]
    fn profile_text_sorts_stages_by_total_time() {
        let registry = coyote_obs::Registry::new();
        registry.observe_duration("fast.stage", 1_000_000); // 1 ms total
        registry.observe_duration("slow.stage", 2_000_000_000); // 2 s total
        registry.observe_duration("slow.stage", 1_000_000_000);
        registry.counter("lp.pivots", 42);
        let text = profile_text(&registry.snapshot());
        assert!(text.contains("per-stage wall time"));
        let slow = text.find("slow.stage").unwrap();
        let fast = text.find("fast.stage").unwrap();
        assert!(slow < fast, "stages must be sorted by total time:\n{text}");
        assert!(text.contains("3.000s"), "total for slow.stage:\n{text}");
        assert!(text.contains("lp.pivots"));
        assert!(text.contains("42"));
    }

    #[test]
    fn profile_text_handles_empty_snapshot() {
        let text = profile_text(&coyote_obs::Registry::new().snapshot());
        assert!(text.contains("(no spans recorded)"));
    }
}
