//! Plain-text report formatting for the experiment harness.
//!
//! Every experiment driver returns structured data; this module renders it
//! as the aligned text tables the `experiments` binary prints (and that
//! `EXPERIMENTS.md` quotes).

/// Renders an aligned text table. The first row is the header.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats a ratio with two decimals (the precision Table I uses).
pub fn ratio(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.2}")
    } else {
        "inf".to_string()
    }
}

/// Formats a percentage with one decimal.
pub fn percent(v: f64) -> String {
    format!("{:.1}%", 100.0 * v)
}

/// A labelled series of (x, y) points — one line of a figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// The (x, y) points in x order.
    pub points: Vec<(f64, f64)>,
}

/// Renders several series sharing the same x values as one table with an
/// `x` column followed by one column per series.
pub fn format_series(x_label: &str, series: &[Series]) -> String {
    let mut headers: Vec<&str> = vec![x_label];
    for s in series {
        headers.push(&s.label);
    }
    let xs: Vec<f64> = series
        .first()
        .map(|s| s.points.iter().map(|&(x, _)| x).collect())
        .unwrap_or_default();
    let rows: Vec<Vec<String>> = xs
        .iter()
        .enumerate()
        .map(|(i, &x)| {
            let mut row = vec![format!("{x:.1}")];
            for s in series {
                row.push(
                    s.points
                        .get(i)
                        .map(|&(_, y)| ratio(y))
                        .unwrap_or_else(|| "-".to_string()),
                );
            }
            row
        })
        .collect();
    format_table(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment_and_separator() {
        let out = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1.00".into()],
                vec!["longer-name".into(), "12.34".into()],
            ],
        );
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("longer-name"));
        // Columns are right-aligned to the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn ratio_and_percent_formatting() {
        assert_eq!(ratio(1.2345), "1.23");
        assert_eq!(ratio(f64::INFINITY), "inf");
        assert_eq!(percent(0.256), "25.6%");
    }

    #[test]
    fn series_share_the_x_column() {
        let s = vec![
            Series {
                label: "ECMP".into(),
                points: vec![(1.0, 1.5), (2.0, 2.5)],
            },
            Series {
                label: "COYOTE".into(),
                points: vec![(1.0, 1.2), (2.0, 1.8)],
            },
        ];
        let out = format_series("margin", &s);
        assert!(out.contains("margin"));
        assert!(out.contains("ECMP"));
        assert!(out.contains("COYOTE"));
        assert!(out.contains("1.20"));
        assert!(out.contains("2.50"));
    }

    #[test]
    fn empty_series_render_without_panicking() {
        let out = format_series("x", &[]);
        assert!(out.contains('x'));
    }
}
