//! The scenario-grid registry and the parallel sweep engine.
//!
//! The paper's evaluation (Section VI, Figs. 6–11 and Table I) is a grid:
//! every Topology-Zoo network × both base demand models × a sweep of
//! uncertainty margins × a link-weight heuristic. [`SweepGrid`] enumerates
//! that grid (with substring filtering and a record limit for bounded
//! runs), and [`run_sweep`] fans the independent scenario evaluations out
//! across a [`coyote_runtime::WorkerPool`], producing a machine-readable
//! [`SweepReport`] with per-scenario ratios and wall-clock timings.
//!
//! Parallelism never changes results: each scenario evaluation is a pure
//! deterministic function of its [`SweepSpec`], and the pool's ordered
//! `par_map` returns records in grid order, so a `threads = 4` sweep is
//! bit-identical to `threads = 1` (asserted by the
//! `sweep_determinism` integration test).

use crate::scenario::{
    evaluate_scenario, BaseModel, Effort, ProtocolRatios, Scenario, WeightHeuristic,
};
use coyote_core::prelude::CoreError;
use coyote_runtime::WorkerPool;
use coyote_topology::zoo;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One cell of the evaluation grid: everything needed to reconstruct a
/// [`Scenario`] by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepSpec {
    /// Topology-Zoo name (see `coyote_topology::zoo::ALL_NAMES`).
    pub topology: String,
    /// Base demand-matrix model.
    pub model: BaseModel,
    /// Uncertainty margin (≥ 1).
    pub margin: f64,
    /// Link-weight heuristic.
    pub heuristic: WeightHeuristic,
    /// Effort level.
    pub effort: Effort,
}

impl SweepSpec {
    /// A stable, human-greppable identifier, e.g.
    /// `Abilene/gravity/reverse-capacities/m2.0`. The `--filter` CLI flag
    /// matches a case-insensitive substring of this string.
    pub fn id(&self) -> String {
        format!(
            "{}/{}/{}/m{:.1}",
            self.topology,
            self.model.name(),
            self.heuristic.name(),
            self.margin
        )
    }

    /// Resolves the spec against the topology zoo.
    pub fn to_scenario(&self) -> Result<Scenario, CoreError> {
        Scenario::from_zoo(
            &self.topology,
            self.model,
            self.margin,
            self.heuristic,
            self.effort,
        )
        .ok_or_else(|| CoreError::DimensionMismatch(format!("unknown topology {}", self.topology)))
    }
}

/// An ordered collection of [`SweepSpec`]s — the work list of one sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepGrid {
    /// The specs, in evaluation (and report) order.
    pub specs: Vec<SweepSpec>,
}

impl SweepGrid {
    /// Builds a grid as the cross product of the given dimensions, ordered
    /// topology-major (then model, heuristic, margin).
    pub fn cross(
        topologies: &[&str],
        models: &[BaseModel],
        margins: &[f64],
        heuristics: &[WeightHeuristic],
        effort: Effort,
    ) -> Self {
        let mut specs = Vec::new();
        for &topology in topologies {
            for &model in models {
                for &heuristic in heuristics {
                    for &margin in margins {
                        specs.push(SweepSpec {
                            topology: topology.to_string(),
                            model,
                            margin,
                            heuristic,
                            effort,
                        });
                    }
                }
            }
        }
        Self { specs }
    }

    /// The full registry: every Topology-Zoo network × both base models ×
    /// the Table-I margin grid × reverse-capacity weights (the heuristic
    /// the paper uses everywhere outside Fig. 9).
    pub fn full(effort: Effort) -> Self {
        let names: Vec<&str> = zoo::ALL_NAMES.to_vec();
        Self::cross(
            &names,
            &[BaseModel::Gravity, BaseModel::Bimodal],
            &crate::experiments::table1_margins(effort),
            &[WeightHeuristic::InverseCapacity],
            effort,
        )
    }

    /// The conformance registry: every Table-I-eligible zoo topology (all
    /// networks except the two near-trees the paper excludes) × both base
    /// demand models, at the representative margin 2.0 with reverse-capacity
    /// weights. One cell per (topology, model): the conformance engine
    /// checks *realizability* of the optimized configuration, which depends
    /// on the DAGs and splits, not on where in the margin grid they came
    /// from — the margin sweep itself is [`SweepGrid::full`]'s job.
    pub fn conformance(effort: Effort) -> Self {
        let names: Vec<&str> = zoo::ALL_NAMES
            .iter()
            .filter(|n| !zoo::NEAR_TREE_NAMES.contains(n))
            .copied()
            .collect();
        Self::cross(
            &names,
            &[BaseModel::Gravity, BaseModel::Bimodal],
            &[2.0],
            &[WeightHeuristic::InverseCapacity],
            effort,
        )
    }

    /// Keeps only specs whose [`SweepSpec::id`] contains `pattern`
    /// (case-insensitive substring match).
    pub fn filter(mut self, pattern: &str) -> Self {
        let needle = pattern.to_ascii_lowercase();
        self.specs
            .retain(|s| s.id().to_ascii_lowercase().contains(&needle));
        self
    }

    /// Truncates the grid to its first `n` specs.
    pub fn limit(mut self, n: usize) -> Self {
        self.specs.truncate(n);
        self
    }

    /// Number of scenarios in the grid.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

/// The outcome of one scenario evaluation inside a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepRecord {
    /// The spec that was evaluated.
    pub spec: SweepSpec,
    /// The four-protocol performance ratios.
    pub ratios: ProtocolRatios,
    /// Wall-clock seconds this single evaluation took (on its worker).
    pub wall_secs: f64,
}

/// A machine-readable sweep run: configuration, per-scenario records (in
/// grid order) and the total wall-clock time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Worker threads the sweep ran with.
    pub threads: usize,
    /// Scenarios evaluated.
    pub scenarios: usize,
    /// End-to-end wall-clock seconds for the whole sweep.
    pub wall_secs: f64,
    /// One record per grid cell, in grid order.
    pub records: Vec<SweepRecord>,
}

impl SweepReport {
    /// Sum of the per-scenario wall-clock times — the work the sweep did,
    /// as opposed to [`wall_secs`](Self::wall_secs), the time it took.
    /// `cpu_secs / wall_secs` approximates the achieved speedup.
    pub fn cpu_secs(&self) -> f64 {
        self.records.iter().map(|r| r.wall_secs).sum()
    }
}

/// Runs every scenario of `grid` on a pool with `threads` workers
/// (`0` = one per available core) and collects the records in grid order.
///
/// Results are bit-identical for every thread count; only the wall-clock
/// fields vary between runs.
pub fn run_sweep(grid: &SweepGrid, threads: usize) -> Result<SweepReport, CoreError> {
    let pool = WorkerPool::new(threads);
    let started = Instant::now();
    let records = pool.try_par_map(&grid.specs, |spec| -> Result<SweepRecord, CoreError> {
        let _cell_span = coyote_obs::span("sweep.cell");
        coyote_obs::counter("sweep.cells", 1);
        let scenario = spec.to_scenario()?;
        let eval_started = Instant::now();
        let eval = evaluate_scenario(&scenario)?;
        Ok(SweepRecord {
            spec: spec.clone(),
            ratios: eval.ratios,
            wall_secs: eval_started.elapsed().as_secs_f64(),
        })
    })?;
    Ok(SweepReport {
        threads: pool.threads(),
        scenarios: records.len(),
        wall_secs: started.elapsed().as_secs_f64(),
        records,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_covers_every_dimension() {
        let grid = SweepGrid::full(Effort::Quick);
        let margins = crate::experiments::table1_margins(Effort::Quick);
        assert_eq!(grid.len(), zoo::ALL_NAMES.len() * 2 * margins.len());
        // Topology-major order: the first |models × margins| specs all
        // belong to the first zoo name.
        let per_topology = 2 * margins.len();
        assert!(grid.specs[..per_topology]
            .iter()
            .all(|s| s.topology == zoo::ALL_NAMES[0]));
    }

    #[test]
    fn conformance_grid_covers_table1_topologies_times_models() {
        let grid = SweepGrid::conformance(Effort::Quick);
        let eligible = zoo::ALL_NAMES.len() - zoo::NEAR_TREE_NAMES.len();
        assert_eq!(grid.len(), eligible * 2);
        assert!(grid.specs.iter().all(|s| s.margin == 2.0));
        assert!(grid
            .specs
            .iter()
            .all(|s| !zoo::NEAR_TREE_NAMES.contains(&s.topology.as_str())));
        // Both models appear for every topology.
        for name in zoo::ALL_NAMES
            .iter()
            .filter(|n| !zoo::NEAR_TREE_NAMES.contains(n))
        {
            for model in [BaseModel::Gravity, BaseModel::Bimodal] {
                assert!(
                    grid.specs
                        .iter()
                        .any(|s| s.topology == *name && s.model == model),
                    "missing {name} x {}",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn filter_is_case_insensitive_and_matches_ids() {
        let grid = SweepGrid::full(Effort::Quick).filter("abilene/GRAVITY");
        assert!(!grid.is_empty());
        assert!(grid
            .specs
            .iter()
            .all(|s| s.topology == "Abilene" && s.model == BaseModel::Gravity));

        assert!(SweepGrid::full(Effort::Quick)
            .filter("no-such-net")
            .is_empty());
    }

    #[test]
    fn limit_truncates_in_grid_order() {
        let full = SweepGrid::full(Effort::Quick);
        let limited = full.clone().limit(3);
        assert_eq!(limited.specs[..], full.specs[..3]);
        assert_eq!(full.clone().limit(usize::MAX).len(), full.len());
    }

    #[test]
    fn spec_ids_are_stable_and_greppable() {
        let spec = SweepSpec {
            topology: "Abilene".into(),
            model: BaseModel::Gravity,
            margin: 2.0,
            heuristic: WeightHeuristic::InverseCapacity,
            effort: Effort::Quick,
        };
        assert_eq!(spec.id(), "Abilene/gravity/reverse-capacities/m2.0");
    }

    #[test]
    fn unknown_topology_fails_the_sweep_with_a_clear_error() {
        let grid = SweepGrid {
            specs: vec![SweepSpec {
                topology: "NoSuchNet".into(),
                model: BaseModel::Gravity,
                margin: 1.0,
                heuristic: WeightHeuristic::InverseCapacity,
                effort: Effort::Quick,
            }],
        };
        let err = run_sweep(&grid, 2).unwrap_err();
        assert!(err.to_string().contains("NoSuchNet"), "{err}");
    }
}
