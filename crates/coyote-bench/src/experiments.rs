//! Drivers that regenerate every table and figure of the paper's evaluation.
//!
//! Each function returns structured results; the `experiments` binary (and
//! the Criterion benches) print or time them. The mapping to the paper:
//!
//! | Driver                  | Paper artefact                                   |
//! |-------------------------|--------------------------------------------------|
//! | [`fig1_running_example`]| Fig. 1 + Appendix B (running example)            |
//! | [`theorem1_gadget`]     | Theorem 1 reduction gadget                       |
//! | [`theorem4_lower_bound`]| Theorem 4 Ω(|V|) lower-bound instance            |
//! | [`margin_sweep`]        | Figs. 6, 7, 8, 9 (ratio vs. uncertainty margin)  |
//! | [`fig10_approximation`] | Fig. 10 (virtual next-hop budgets)               |
//! | [`fig11_stretch`]       | Fig. 11 (average path stretch)                   |
//! | [`table1`]              | Table I (full ratio table)                       |
//! | [`fig12_prototype`]     | Fig. 12 (prototype packet-drop experiment)       |
//!
//! [`margin_sweep`], [`table1`] and [`fig11_stretch`] evaluate independent
//! scenarios, so they fan out across a [`coyote_runtime::WorkerPool`]
//! (`threads` argument; results are identical for every thread count). The
//! full evaluation grid behind these drivers is enumerated by
//! [`crate::sweep::SweepGrid`] and run by [`crate::sweep::run_sweep`].

use crate::scenario::{
    evaluate_scenario, BaseModel, Effort, ProtocolRatios, Scenario, WeightHeuristic,
};
use crate::sweep::SweepSpec;
use coyote_core::example_fig1;
use coyote_core::prelude::*;
use coyote_graph::{Graph, NodeId};
use coyote_ospf::{compute_program, realized_routing, VirtualLinkBudget};
use coyote_runtime::WorkerPool;
use coyote_sim::scenario::{run_all as run_prototype_all, PrototypeResult};
use coyote_traffic::{DemandMatrix, UncertaintySet};
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Fig. 1 / Appendix B: the running example.
// ---------------------------------------------------------------------------

/// Results of the running-example experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Result {
    /// Exact oblivious ratio of ECMP with unit weights.
    pub ecmp_ratio: f64,
    /// Exact oblivious ratio of the paper's Fig. 1c configuration (4/3).
    pub fig1c_ratio: f64,
    /// Exact oblivious ratio of the Appendix-B golden-ratio optimum (≈1.236).
    pub golden_ratio: f64,
    /// Exact oblivious ratio of the configuration COYOTE's optimizer finds.
    pub coyote_ratio: f64,
}

/// Reproduces the running example end to end.
pub fn fig1_running_example() -> Result<Fig1Result, CoreError> {
    let (graph, nodes) = example_fig1::topology();
    let unc = example_fig1::uncertainty(&nodes);

    let exact = |routing: &PdRouting| -> Result<f64, CoreError> {
        Ok(performance_ratio_exact(&graph, routing, &unc, RoutabilityScope::AllEdges, None)?.ratio)
    };

    let ecmp = ecmp_routing(&graph)?;
    let fig1c = example_fig1::fig1c_routing(&graph, &nodes);
    let golden = example_fig1::golden_routing(&graph, &nodes);
    let optimized = coyote(&graph, &unc, None, &CoyoteConfig::fast())?;

    Ok(Fig1Result {
        ecmp_ratio: exact(&ecmp)?,
        fig1c_ratio: exact(&fig1c)?,
        golden_ratio: exact(&golden)?,
        coyote_ratio: exact(&optimized.routing)?,
    })
}

// ---------------------------------------------------------------------------
// Theorem 1: the BIPARTITION gadget.
// ---------------------------------------------------------------------------

/// Results of the NP-hardness gadget experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GadgetResult {
    /// The weights of the BIPARTITION instance.
    pub weights: Vec<f64>,
    /// Ratio achieved when the integer gadgets are oriented according to an
    /// even bipartition (Lemma 2 predicts 4/3 for positive instances).
    pub balanced_ratio: f64,
    /// Ratio achieved when all gadgets are oriented the same way (a
    /// maximally unbalanced "partition").
    pub unbalanced_ratio: f64,
}

/// Builds the Theorem-1 reduction instance for a set of integer weights and
/// measures the oblivious ratio of a balanced versus an unbalanced gadget
/// orientation, using the extreme matrices `D1`/`D2` of the proof.
pub fn theorem1_gadget(weights: &[f64]) -> Result<GadgetResult, CoreError> {
    assert!(!weights.is_empty(), "need at least one integer weight");
    let sum: f64 = weights.iter().sum();

    // Build the gadget graph.
    let mut g = Graph::new();
    let s1 = g.add_node("s1").unwrap();
    let s2 = g.add_node("s2").unwrap();
    let t = g.add_node("t").unwrap();
    let mut gadget_nodes = Vec::new();
    for (i, &w) in weights.iter().enumerate() {
        let x1 = g.add_node(format!("x1_{i}")).unwrap();
        let x2 = g.add_node(format!("x2_{i}")).unwrap();
        let m = g.add_node(format!("m_{i}")).unwrap();
        g.add_bidirectional_edge(x1, x2, w, 1.0).unwrap();
        g.add_bidirectional_edge(x1, m, w, 1.0).unwrap();
        g.add_bidirectional_edge(x2, m, w, 1.0).unwrap();
        g.add_edge(s1, x1, 2.0 * w, 1.0).unwrap();
        g.add_edge(s2, x2, 2.0 * w, 1.0).unwrap();
        g.add_edge(m, t, 2.0 * w, 1.0).unwrap();
        gadget_nodes.push((x1, x2, m));
    }

    // The two extreme matrices of the proof.
    let d1 = DemandMatrix::from_pairs(g.node_count(), &[(s1, t, 2.0 * sum)]);
    let d2 = DemandMatrix::from_pairs(g.node_count(), &[(s2, t, 2.0 * sum)]);

    // Routing following the proof of Lemma 2 for a partition assignment:
    // `in_p1[i]` decides the orientation of the (x1, x2) link of gadget i
    // and the splitting ratios at s1/s2.
    let build_routing = |in_p1: &[bool]| -> Result<PdRouting, CoreError> {
        let mut raw = vec![0.0; g.edge_count()];
        for (i, &(x1, x2, m)) in gadget_nodes.iter().enumerate() {
            let w = weights[i];
            let p1 = in_p1[i];
            // Splitting at the sources (Lemma 2): 4w/3SUM if the gadget is in
            // the source's partition, 2w/3SUM otherwise. The ratios are
            // normalized per node, so relative magnitudes are what matters.
            raw[g.find_edge(s1, x1).unwrap().index()] = if p1 { 4.0 * w } else { 2.0 * w };
            raw[g.find_edge(s2, x2).unwrap().index()] = if p1 { 2.0 * w } else { 4.0 * w };
            // Orientation and splits inside the gadget.
            let x1x2 = g.find_edge(x1, x2).unwrap();
            let x2x1 = g.find_edge(x2, x1).unwrap();
            let x1m = g.find_edge(x1, m).unwrap();
            let x2m = g.find_edge(x2, m).unwrap();
            if p1 {
                raw[x1x2.index()] = 0.5;
                raw[x1m.index()] = 0.5;
                raw[x2m.index()] = 1.0;
                raw[x2x1.index()] = 0.0;
            } else {
                raw[x2x1.index()] = 0.5;
                raw[x2m.index()] = 0.5;
                raw[x1m.index()] = 1.0;
                raw[x1x2.index()] = 0.0;
            }
            raw[g.find_edge(m, t).unwrap().index()] = 1.0;
        }
        // The DAG towards t must respect the chosen orientations; rebuild it
        // from the positive-ratio edges.
        let mut edges = Vec::new();
        for e in g.edges() {
            if raw[e.index()] > 0.0 {
                edges.push(e);
            }
        }
        let dag_t = coyote_graph::Dag::new(&g, t, &edges)?;
        let mut dags = build_all_dags(&g, DagMode::Augmented)?;
        dags[t.index()] = dag_t;
        let mut ratios = vec![vec![0.0; g.edge_count()]; g.node_count()];
        ratios[t.index()] = raw;
        // Other destinations keep uniform splits over their augmented DAGs.
        for dest in g.nodes() {
            if dest != t {
                for v in g.nodes() {
                    let out = dags[dest.index()].out_edges(v);
                    if !out.is_empty() {
                        let share = 1.0 / out.len() as f64;
                        for &e in out {
                            ratios[dest.index()][e.index()] = share;
                        }
                    }
                }
            }
        }
        Ok(PdRouting::from_ratios(&g, dags, ratios))
    };

    // Balanced partition: greedy split into two halves of (near-)equal sum.
    let balanced = balanced_partition(weights);
    let unbalanced = vec![true; weights.len()];

    let eval = |routing: &PdRouting| -> Result<f64, CoreError> {
        let mut worst = 0.0_f64;
        for dm in [&d1, &d2] {
            let opt = optu(&g, dm)?;
            if opt > 1e-9 {
                worst = worst.max(routing.max_link_utilization(&g, dm) / opt);
            }
        }
        Ok(worst)
    };

    Ok(GadgetResult {
        weights: weights.to_vec(),
        balanced_ratio: eval(&build_routing(&balanced)?)?,
        unbalanced_ratio: eval(&build_routing(&unbalanced)?)?,
    })
}

/// Greedy near-equal bipartition of a weight set (true = first partition).
pub fn balanced_partition(weights: &[f64]) -> Vec<bool> {
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        weights[b]
            .partial_cmp(&weights[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut in_p1 = vec![false; weights.len()];
    let (mut sum1, mut sum2) = (0.0, 0.0);
    for i in order {
        if sum1 <= sum2 {
            in_p1[i] = true;
            sum1 += weights[i];
        } else {
            sum2 += weights[i];
        }
    }
    in_p1
}

// ---------------------------------------------------------------------------
// Theorem 4: the Ω(|V|) lower-bound instance.
// ---------------------------------------------------------------------------

/// Results of the lower-bound experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LowerBoundResult {
    /// Number of path nodes `n`.
    pub n: usize,
    /// Performance ratio of ECMP (a representative destination-based
    /// oblivious routing) on the spike matrices.
    pub oblivious_ratio: f64,
    /// The demands-aware optimum of every spike matrix (should be ≤ 1 by
    /// construction).
    pub optimum: f64,
}

/// Builds the Theorem-4 instance (an `n`-node path with huge-capacity path
/// links and unit-capacity links to the target) and measures how badly any
/// fixed destination-based routing does against the per-source spike
/// matrices.
pub fn theorem4_lower_bound(n: usize) -> Result<LowerBoundResult, CoreError> {
    assert!(n >= 2, "need at least two path nodes");
    let mut g = Graph::new();
    let xs: Vec<NodeId> = (0..n)
        .map(|i| g.add_node(format!("x{i}")).unwrap())
        .collect();
    let t = g.add_node("t").unwrap();
    let huge = n as f64 * 10.0;
    for i in 0..n - 1 {
        g.add_bidirectional_edge(xs[i], xs[i + 1], huge, 1.0)
            .unwrap();
    }
    for &x in &xs {
        g.add_edge(x, t, 1.0, 1.0).unwrap();
    }

    let ecmp = ecmp_routing(&g)?;
    let mut worst_ratio = 0.0_f64;
    let mut worst_opt = 0.0_f64;
    for &x in &xs {
        let dm = DemandMatrix::from_pairs(g.node_count(), &[(x, t, n as f64)]);
        let opt = optu(&g, &dm)?;
        worst_opt = worst_opt.max(opt);
        let util = ecmp.max_link_utilization(&g, &dm);
        if opt > 1e-9 {
            worst_ratio = worst_ratio.max(util / opt);
        }
    }
    Ok(LowerBoundResult {
        n,
        oblivious_ratio: worst_ratio,
        optimum: worst_opt,
    })
}

// ---------------------------------------------------------------------------
// Figs. 6-9: performance ratio versus uncertainty margin.
// ---------------------------------------------------------------------------

/// Sweeps the uncertainty margin for one topology/model/heuristic and
/// returns one [`ProtocolRatios`] per margin (the four lines of Figs. 6-9).
///
/// The per-margin evaluations are independent; they fan out across a
/// [`WorkerPool`] with `threads` workers (`0` = one per core, `1` = serial)
/// and come back in margin order with results identical for every thread
/// count.
pub fn margin_sweep(
    topology: &str,
    model: BaseModel,
    heuristic: WeightHeuristic,
    margins: &[f64],
    effort: Effort,
    threads: usize,
) -> Result<Vec<ProtocolRatios>, CoreError> {
    WorkerPool::new(threads).try_par_map(margins, |&margin| {
        let scenario = SweepSpec {
            topology: topology.to_string(),
            model,
            margin,
            heuristic,
            effort,
        }
        .to_scenario()?;
        Ok(evaluate_scenario(&scenario)?.ratios)
    })
}

/// The margins the paper uses for Figs. 6-8 (1 to 3 in 0.5 steps).
pub fn fig6_margins(effort: Effort) -> Vec<f64> {
    match effort {
        Effort::Quick => vec![1.0, 2.0, 3.0],
        Effort::Full => vec![1.0, 1.5, 2.0, 2.5, 3.0],
    }
}

/// The margins of Fig. 9 and Table I (1 to 5 in 0.5 steps).
pub fn table1_margins(effort: Effort) -> Vec<f64> {
    match effort {
        Effort::Quick => vec![1.0, 2.0, 3.0, 5.0],
        Effort::Full => vec![1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0],
    }
}

// ---------------------------------------------------------------------------
// Fig. 10: approximating the splitting ratios with virtual next hops.
// ---------------------------------------------------------------------------

/// One point of Fig. 10: a virtual-next-hop budget and the resulting
/// performance ratio of the realized configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproximationPoint {
    /// FIB entries allowed per (router, prefix); `None` is the ideal
    /// (unquantized) configuration.
    pub budget: Option<usize>,
    /// Performance ratio of the realized routing on the shared evaluation
    /// family.
    pub ratio: f64,
    /// Fake nodes the Fibbing program needs.
    pub fake_nodes: usize,
}

/// Results of the Fig. 10 experiment for one topology and margin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApproximationResult {
    /// Topology name.
    pub topology: String,
    /// Margin used.
    pub margin: f64,
    /// ECMP reference ratio.
    pub ecmp_ratio: f64,
    /// One point per budget (3, 5, 10, ideal).
    pub points: Vec<ApproximationPoint>,
}

/// Reproduces Fig. 10: COYOTE's splitting ratios are quantized to 3/5/10
/// virtual next hops per router interface and re-evaluated.
pub fn fig10_approximation(
    topology: &str,
    margin: f64,
    effort: Effort,
) -> Result<ApproximationResult, CoreError> {
    let scenario = Scenario::from_zoo(
        topology,
        BaseModel::Gravity,
        margin,
        WeightHeuristic::InverseCapacity,
        effort,
    )
    .ok_or_else(|| CoreError::DimensionMismatch(format!("unknown topology {topology}")))?;
    let eval = evaluate_scenario(&scenario)?;

    let mut points = Vec::new();
    for budget in [Some(3usize), Some(5), Some(10), None] {
        let vl = match budget {
            Some(n) => VirtualLinkBudget::per_prefix(n),
            None => VirtualLinkBudget::unlimited(),
        };
        let program = compute_program(&eval.graph, &eval.coyote_routing, vl)
            .map_err(|e| CoreError::InvalidRouting(e.to_string()))?;
        let realized = realized_routing(&eval.graph, &program)
            .map_err(|e| CoreError::InvalidRouting(e.to_string()))?;
        let ratio = eval.evaluation.performance_ratio(&eval.graph, &realized);
        points.push(ApproximationPoint {
            budget,
            ratio,
            fake_nodes: program.stats.fake_nodes,
        });
    }

    Ok(ApproximationResult {
        topology: scenario.topology.name.clone(),
        margin,
        ecmp_ratio: eval.ratios.ecmp,
        points,
    })
}

// ---------------------------------------------------------------------------
// Fig. 11: average path stretch.
// ---------------------------------------------------------------------------

/// One bar of Fig. 11.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StretchResult {
    /// Topology name.
    pub topology: String,
    /// Average stretch of COYOTE (oblivious) relative to ECMP.
    pub oblivious_stretch: f64,
    /// Average stretch of COYOTE (partial knowledge) relative to ECMP.
    pub partial_stretch: f64,
}

/// Reproduces Fig. 11 for the given topologies at margin 2.5, one pool
/// worker per topology (`threads` as in [`margin_sweep`]).
pub fn fig11_stretch(
    topologies: &[&str],
    effort: Effort,
    threads: usize,
) -> Result<Vec<StretchResult>, CoreError> {
    let margin = 2.5;
    WorkerPool::new(threads).try_par_map(topologies, |name| {
        let scenario = SweepSpec {
            topology: name.to_string(),
            model: BaseModel::Gravity,
            margin,
            heuristic: WeightHeuristic::InverseCapacity,
            effort,
        }
        .to_scenario()?;
        let eval = evaluate_scenario(&scenario)?;

        // COYOTE oblivious routing for the same DAGs (recomputed cheaply).
        let dags = build_all_dags(&eval.graph, DagMode::Augmented)?;
        let oblivious = optimize_splitting(
            &eval.graph,
            dags,
            &UncertaintySet::oblivious(eval.graph.node_count()),
            Some(&eval.base),
            &CoyoteConfig::fast(),
        )?;

        let partial_stretch =
            average_stretch(&eval.graph, &eval.coyote_routing, &eval.ecmp_routing).unwrap_or(1.0);
        let oblivious_stretch =
            average_stretch(&eval.graph, &oblivious.routing, &eval.ecmp_routing).unwrap_or(1.0);
        Ok(StretchResult {
            topology: scenario.topology.name.clone(),
            oblivious_stretch,
            partial_stretch,
        })
    })
}

// ---------------------------------------------------------------------------
// Table I.
// ---------------------------------------------------------------------------

/// Reproduces Table I: every topology × margin with the four protocols.
///
/// The whole topology × margin cross product is flattened into one work
/// list so the pool stays busy across topology boundaries (a per-topology
/// fan-out would stall on the largest network at the end of each row).
/// Rows come back topology-major, exactly as the serial loop produced them.
pub fn table1(
    topologies: &[&str],
    margins: &[f64],
    model: BaseModel,
    effort: Effort,
    threads: usize,
) -> Result<Vec<ProtocolRatios>, CoreError> {
    let cells: Vec<(&str, f64)> = topologies
        .iter()
        .flat_map(|&name| margins.iter().map(move |&m| (name, m)))
        .collect();
    WorkerPool::new(threads).try_par_map(&cells, |&(name, margin)| {
        let scenario = SweepSpec {
            topology: name.to_string(),
            model,
            margin,
            heuristic: WeightHeuristic::InverseCapacity,
            effort,
        }
        .to_scenario()?;
        Ok(evaluate_scenario(&scenario)?.ratios)
    })
}

/// The topology subsets used by the harness.
pub fn table1_topologies(effort: Effort) -> Vec<&'static str> {
    match effort {
        Effort::Quick => vec!["Abilene", "NSF", "Digex", "BtEurope"],
        Effort::Full => vec![
            "AS1221",
            "AS1755",
            "AS3257",
            "BICS",
            "BtEurope",
            "Digex",
            "GRNet",
            "Geant",
            "Germany",
            "InternetMCI",
            "Italy",
            "NSF",
            "Abilene",
            "ATT",
        ],
    }
}

/// The topologies of the stretch figure (everything except the near-trees,
/// plus BBNPlanet which the paper keeps for this figure).
pub fn fig11_topologies(effort: Effort) -> Vec<&'static str> {
    match effort {
        Effort::Quick => vec!["Abilene", "NSF", "Digex"],
        Effort::Full => vec![
            "AS1221",
            "AS1755",
            "AS3257",
            "Abilene",
            "ATT",
            "BBNPlanet",
            "BICS",
            "BtEurope",
            "Digex",
            "Geant",
            "Germany",
            "GRNet",
            "InternetMCI",
            "Italy",
            "NSF",
        ],
    }
}

// ---------------------------------------------------------------------------
// Fig. 12: prototype.
// ---------------------------------------------------------------------------

/// Reproduces Fig. 12 by running the flow-level prototype emulation for
/// TE1, TE2, TE3 and COYOTE.
pub fn fig12_prototype() -> Vec<PrototypeResult> {
    run_prototype_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_numbers_match_the_paper() {
        let r = fig1_running_example().unwrap();
        assert!((r.fig1c_ratio - 4.0 / 3.0).abs() < 1e-3, "{:?}", r);
        assert!((r.golden_ratio - example_fig1::OPTIMAL_WORST_UTILIZATION).abs() < 1e-3);
        assert!(r.ecmp_ratio >= 1.5 - 1e-6);
        assert!(r.coyote_ratio < r.ecmp_ratio);
    }

    #[test]
    fn gadget_balanced_orientation_beats_unbalanced() {
        // Positive BIPARTITION instance: {1, 2, 3} splits into {1,2} and {3}.
        let r = theorem1_gadget(&[1.0, 2.0, 3.0]).unwrap();
        assert!(
            r.balanced_ratio < r.unbalanced_ratio - 0.1,
            "balanced {} vs unbalanced {}",
            r.balanced_ratio,
            r.unbalanced_ratio
        );
        // Lemma 2: a positive instance admits a 4/3 solution.
        assert!(r.balanced_ratio <= 4.0 / 3.0 + 0.05, "{}", r.balanced_ratio);
    }

    #[test]
    fn lower_bound_ratio_grows_linearly() {
        let small = theorem4_lower_bound(3).unwrap();
        let large = theorem4_lower_bound(6).unwrap();
        // Any fixed destination-based routing concentrates some spike on a
        // unit edge: ratio n (OPT spreads it at utilization <= 1).
        assert!(small.optimum <= 1.0 + 1e-6);
        assert!(large.optimum <= 1.0 + 1e-6);
        assert!((small.oblivious_ratio - 3.0).abs() < 1e-6);
        assert!((large.oblivious_ratio - 6.0).abs() < 1e-6);
    }

    #[test]
    fn balanced_partition_splits_evenly() {
        let p = balanced_partition(&[3.0, 1.0, 2.0]);
        let s1: f64 = p
            .iter()
            .zip([3.0, 1.0, 2.0])
            .filter(|(&b, _)| b)
            .map(|(_, w)| w)
            .sum();
        assert!((s1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fig12_prototype_reproduces_the_papers_story() {
        let results = fig12_prototype();
        let coyote = results.iter().find(|r| r.scheme == "COYOTE").unwrap();
        assert!(coyote.worst_drop_rate() < 1e-9);
        for r in results.iter().filter(|r| r.scheme != "COYOTE") {
            assert!(
                r.worst_drop_rate() >= 0.25 - 1e-9,
                "{} {}",
                r.scheme,
                r.worst_drop_rate()
            );
        }
    }

    #[test]
    fn margin_lists_are_ordered_and_in_range() {
        for effort in [Effort::Quick, Effort::Full] {
            for m in [fig6_margins(effort), table1_margins(effort)] {
                assert!(m.windows(2).all(|w| w[0] < w[1]));
                assert!(m.iter().all(|&x| (1.0..=5.0).contains(&x)));
            }
            assert!(!table1_topologies(effort).is_empty());
            assert!(!fig11_topologies(effort).is_empty());
        }
    }
}
