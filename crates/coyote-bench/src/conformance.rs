//! The full-stack conformance engine: every sweep cell, end to end through
//! the realized Fibbing routing.
//!
//! The sweep engine ([`crate::sweep`]) scores scenarios *analytically*: it
//! evaluates the optimized per-destination DAGs with the flow algebra of
//! `coyote_core::PdRouting`. The paper's claim, however, is stronger — the
//! optimized configuration is *realizable* in plain OSPF via Fibbing lies
//! (Section V) and behaves as predicted under load (Section VII). The
//! conformance engine closes that loop for every grid cell:
//!
//! 1. evaluate the scenario as the sweep does (optimized COYOTE routing);
//! 2. compile the routing into a [`FibbingProgram`] and reconstruct the
//!    routing the *real* routers would compute from the lied-to LSDB
//!    (`realized_routing`: LSDB → SPF → FIB → `PdRouting`);
//! 3. verify the program ([`compare_routings`]: DAG equality + splitting-
//!    ratio error) and count the lies ([`fake_nodes_per_destination`]);
//! 4. simulate the base and worst-case demand matrices through *both* the
//!    intended and the realized routing on the flow-level emulator
//!    ([`FlowSimulator::from_pd_routing`]);
//! 5. emit one [`ConformanceRecord`] per cell with the max-utilization and
//!    drop-rate deltas and a tolerance verdict.
//!
//! Cells are independent, so [`run_conformance`] fans them out over a
//! [`coyote_runtime::WorkerPool`] exactly like `run_sweep`: records come
//! back in grid order, bit-identical for every thread count (asserted by
//! the `conformance_pipeline` integration test).

use crate::scenario::evaluate_scenario;
use crate::sweep::{SweepGrid, SweepSpec};
use coyote_core::prelude::CoreError;
use coyote_graph::Graph;
use coyote_ospf::{
    compare_routings, compute_program_with, fake_nodes_per_destination, realized_routing,
    CompressionLevel, FibbingProgram, VirtualLinkBudget, DEFAULT_EPSILON,
};
use coyote_runtime::WorkerPool;
use coyote_sim::{FlowSimulator, SimOutcome};
use coyote_traffic::DemandMatrix;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Default tolerance for the per-cell verdict: splitting-ratio error and
/// simulated max-utilization / drop-rate deltas must all stay below this.
/// Chosen above the quantization error of the [`COMPILE_BUDGET`]-entry
/// virtual-next-hop approximation but far below any behaviourally
/// meaningful divergence.
pub const DEFAULT_TOLERANCE: f64 = 0.05;

/// Virtual-next-hop entries per (router, prefix) used when compiling a
/// cell's routing into lies. Deliberately far above the operational budgets
/// Fig. 10 evaluates (3/5/10): conformance isolates *protocol
/// realizability* from the quantization trade-off, so the compile step gets
/// enough entries that the worst split error over the zoo (~4/budget on
/// high-degree nodes) stays under [`DEFAULT_TOLERANCE`]. The price is
/// larger fake-node multiplicities, which the records report.
pub const COMPILE_BUDGET: usize = 256;

/// Headline numbers of one simulated steady state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimSummary {
    /// Total offered rate.
    pub offered: f64,
    /// Total delivered rate.
    pub delivered: f64,
    /// Fraction of offered traffic dropped.
    pub drop_rate: f64,
    /// Maximum link utilization (carried / capacity; ≤ 1 by construction).
    pub max_utilization: f64,
}

impl SimSummary {
    fn of(sim: &FlowSimulator, outcome: &SimOutcome) -> Self {
        Self {
            offered: outcome.offered,
            delivered: outcome.delivered,
            drop_rate: outcome.drop_rate(),
            max_utilization: sim.max_utilization(outcome),
        }
    }
}

/// Intended-vs-realized simulation of one demand matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixConformance {
    /// Steady state under the optimizer's intended routing.
    pub intended: SimSummary,
    /// Steady state under the routing realized by the Fibbing program.
    pub realized: SimSummary,
}

impl MatrixConformance {
    fn measure(
        intended_sim: &FlowSimulator,
        realized_sim: &FlowSimulator,
        dm: &DemandMatrix,
    ) -> Self {
        Self {
            intended: SimSummary::of(intended_sim, &intended_sim.run_matrix(dm)),
            realized: SimSummary::of(realized_sim, &realized_sim.run_matrix(dm)),
        }
    }

    /// |intended − realized| max-link-utilization.
    pub fn max_utilization_delta(&self) -> f64 {
        (self.intended.max_utilization - self.realized.max_utilization).abs()
    }

    /// |intended − realized| drop rate.
    pub fn drop_rate_delta(&self) -> f64 {
        (self.intended.drop_rate - self.realized.drop_rate).abs()
    }
}

/// The conformance verdict of one grid cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConformanceRecord {
    /// The sweep cell.
    pub spec: SweepSpec,
    /// True if the realized DAGs match the intended DAGs exactly.
    pub dags_match: bool,
    /// Largest |realized − intended| splitting ratio over all
    /// (destination, edge) pairs.
    pub max_split_error: f64,
    /// `verify_program` verdict: matching DAGs and split error within the
    /// run's tolerance.
    pub faithful: bool,
    /// Total fake nodes the Fibbing program injects (after compression,
    /// when enabled).
    pub fake_nodes: usize,
    /// Total destination-prefix advertisements the fakes carry (equals
    /// `fake_nodes` for uncompressed programs; larger once compression
    /// shares fakes across destinations).
    pub prefix_advertisements: usize,
    /// The compression level the program was compiled at
    /// ([`CompressionLevel::label`]).
    pub compression: String,
    /// Largest per-destination fake-node count
    /// (from [`fake_nodes_per_destination`]).
    pub max_fake_nodes_per_destination: usize,
    /// Simulation of the scenario's base demand matrix.
    pub base: MatrixConformance,
    /// Simulation of the worst-case matrix of the evaluation family (the
    /// matrix on which the intended routing performs worst).
    pub worst: MatrixConformance,
    /// Max over both matrices of the max-utilization delta.
    pub max_utilization_delta: f64,
    /// Max over both matrices of the drop-rate delta.
    pub drop_rate_delta: f64,
    /// The cell-level verdict: faithful AND both deltas within tolerance.
    pub within_tolerance: bool,
    /// Wall-clock seconds this cell took on its worker.
    pub wall_secs: f64,
}

impl ConformanceRecord {
    /// This record with its non-deterministic wall-clock timing zeroed out.
    ///
    /// Everything else in a record is a pure function of the spec and the
    /// tolerance, so two runs of the same cell — serial or parallel, on any
    /// `--threads` value — compare equal under this view. Both the
    /// determinism integration test and the CI bit-identity assertion
    /// compare records through it instead of mutating copies in place.
    pub fn deterministic_view(&self) -> ConformanceRecord {
        ConformanceRecord {
            wall_secs: 0.0,
            ..self.clone()
        }
    }
}

/// A machine-readable conformance run: configuration, per-cell records in
/// grid order, and the total wall-clock time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConformanceReport {
    /// Worker threads the run used.
    pub threads: usize,
    /// Cells checked.
    pub cells: usize,
    /// Tolerance the verdicts were computed against.
    pub tolerance: f64,
    /// The compression level all cells were compiled at.
    pub compression: String,
    /// End-to-end wall-clock seconds.
    pub wall_secs: f64,
    /// One record per grid cell, in grid order.
    pub records: Vec<ConformanceRecord>,
}

impl ConformanceReport {
    /// Sum of the per-cell wall-clock times (the work done, as opposed to
    /// [`wall_secs`](Self::wall_secs), the time it took).
    pub fn cpu_secs(&self) -> f64 {
        self.records.iter().map(|r| r.wall_secs).sum()
    }

    /// Number of cells whose verdict is within tolerance.
    pub fn pass_count(&self) -> usize {
        self.records.iter().filter(|r| r.within_tolerance).count()
    }

    /// True if every cell is within tolerance.
    pub fn all_within_tolerance(&self) -> bool {
        self.records.iter().all(|r| r.within_tolerance)
    }

    /// The worst max-utilization delta across all cells.
    pub fn worst_utilization_delta(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.max_utilization_delta)
            .fold(0.0, f64::max)
    }

    /// The worst split error across all cells.
    pub fn worst_split_error(&self) -> f64 {
        self.records
            .iter()
            .map(|r| r.max_split_error)
            .fold(0.0, f64::max)
    }

    /// Total fake nodes across all cells.
    pub fn total_fake_nodes(&self) -> usize {
        self.records.iter().map(|r| r.fake_nodes).sum()
    }

    /// Total prefix advertisements across all cells.
    pub fn total_prefix_advertisements(&self) -> usize {
        self.records.iter().map(|r| r.prefix_advertisements).sum()
    }
}

/// Compiles and checks one grid cell end to end (see the module docs for
/// the pipeline). Pure and deterministic: the record depends only on the
/// spec and the tolerance.
pub fn conformance_record(
    spec: &SweepSpec,
    tolerance: f64,
) -> Result<ConformanceRecord, CoreError> {
    conformance_record_with(spec, tolerance, CompressionLevel::Off)
}

/// [`conformance_record`] with the Fibbing program compiled at the given
/// [`CompressionLevel`] (the `--compress` path of `experiments conform`).
pub fn conformance_record_with(
    spec: &SweepSpec,
    tolerance: f64,
    level: CompressionLevel,
) -> Result<ConformanceRecord, CoreError> {
    let _cell_span = coyote_obs::span("conform.cell");
    coyote_obs::counter("conform.cells", 1);
    let started = Instant::now();
    let scenario = spec.to_scenario()?;
    let eval = {
        let _span = coyote_obs::span("conform.evaluate");
        evaluate_scenario(&scenario)?
    };
    let graph = &eval.graph;
    let intended = &eval.coyote_routing;

    // Compile the optimized routing into OSPF lies and reconstruct what the
    // real routers would compute (budget: see [`COMPILE_BUDGET`]). The
    // compile itself opens the "ospf.compile" span; `realized_routing` runs
    // the routers' SPF under "ospf.spf"; compression (when on) runs under
    // "ospf.compress".
    let program = compile(graph, intended, level)?;
    let realized =
        realized_routing(graph, &program).map_err(|e| CoreError::InvalidRouting(e.to_string()))?;
    let verification = {
        let _span = coyote_obs::span("conform.verify");
        compare_routings(graph, intended, &realized)
    };
    let per_destination = fake_nodes_per_destination(graph, &program);
    let max_fakes = per_destination.iter().map(|&(_, c)| c).max().unwrap_or(0);

    // The two matrices the paper's story hinges on: the operator's base
    // estimate and the adversarial worst case of the evaluation family.
    let worst_dm = eval
        .evaluation
        .worst_matrix(graph, intended)
        .cloned()
        .unwrap_or_else(|| eval.base.clone());

    let _flowsim_span = coyote_obs::span("conform.flowsim");
    let intended_sim = FlowSimulator::from_pd_routing(graph, intended);
    let realized_sim = FlowSimulator::from_pd_routing(graph, &realized);
    let base = MatrixConformance::measure(&intended_sim, &realized_sim, &eval.base);
    let worst = MatrixConformance::measure(&intended_sim, &realized_sim, &worst_dm);
    drop(_flowsim_span);

    let max_utilization_delta = base
        .max_utilization_delta()
        .max(worst.max_utilization_delta());
    let drop_rate_delta = base.drop_rate_delta().max(worst.drop_rate_delta());
    let faithful = verification.is_faithful(tolerance);

    Ok(ConformanceRecord {
        spec: spec.clone(),
        dags_match: verification.dags_match,
        max_split_error: verification.max_split_error,
        faithful,
        fake_nodes: program.stats.fake_nodes,
        prefix_advertisements: program.stats.prefix_advertisements,
        compression: level.label(),
        max_fake_nodes_per_destination: max_fakes,
        base,
        worst,
        max_utilization_delta,
        drop_rate_delta,
        within_tolerance: faithful
            && max_utilization_delta <= tolerance
            && drop_rate_delta <= tolerance,
        wall_secs: started.elapsed().as_secs_f64(),
    })
}

fn compile(
    graph: &Graph,
    intended: &coyote_core::PdRouting,
    level: CompressionLevel,
) -> Result<FibbingProgram, CoreError> {
    compute_program_with(
        graph,
        intended,
        VirtualLinkBudget::per_prefix(COMPILE_BUDGET),
        level,
    )
    .map_err(|e| CoreError::InvalidRouting(e.to_string()))
}

/// Runs the conformance pipeline for every cell of `grid` on a pool with
/// `threads` workers (`0` = one per core) and collects the records in grid
/// order. Results are bit-identical for every thread count; only the
/// wall-clock fields vary between runs.
pub fn run_conformance(
    grid: &SweepGrid,
    threads: usize,
    tolerance: f64,
) -> Result<ConformanceReport, CoreError> {
    run_conformance_with(grid, threads, tolerance, CompressionLevel::Off)
}

/// [`run_conformance`] with every cell compiled at the given
/// [`CompressionLevel`].
pub fn run_conformance_with(
    grid: &SweepGrid,
    threads: usize,
    tolerance: f64,
    level: CompressionLevel,
) -> Result<ConformanceReport, CoreError> {
    let pool = WorkerPool::new(threads);
    let started = Instant::now();
    let records = pool.try_par_map(&grid.specs, |spec| {
        conformance_record_with(spec, tolerance, level)
    })?;
    Ok(ConformanceReport {
        threads: pool.threads(),
        cells: records.len(),
        tolerance,
        compression: level.label(),
        wall_secs: started.elapsed().as_secs_f64(),
        records,
    })
}

/// One point of a compression Pareto sweep: the whole grid compiled at one
/// level, aggregated into the fake-node-count vs split-error trade-off.
/// Time-free, so points are bit-identical across runs and thread counts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// The compression level ([`CompressionLevel::label`]).
    pub level: String,
    /// Quantization tolerance of the level (zero for off/lossless).
    pub epsilon: f64,
    /// Total fake nodes across all cells.
    pub fake_nodes: usize,
    /// Total prefix advertisements across all cells.
    pub prefix_advertisements: usize,
    /// `fake_nodes` relative to the uncompressed baseline (1.0 = no
    /// reduction; 0.1 = ten-fold fewer forged LSAs).
    pub fake_node_ratio: f64,
    /// Worst per-cell split error at this level.
    pub max_split_error: f64,
    /// Worst per-cell max-utilization delta at this level.
    pub max_utilization_delta: f64,
    /// Cells within tolerance at this level.
    pub cells_within_tolerance: usize,
}

/// A compression Pareto sweep over one grid: one [`ParetoPoint`] per level,
/// in the order the levels were given.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoReport {
    /// Worker threads the run used.
    pub threads: usize,
    /// Cells per point.
    pub cells: usize,
    /// Tolerance the verdicts were computed against.
    pub tolerance: f64,
    /// End-to-end wall-clock seconds.
    pub wall_secs: f64,
    /// One aggregated point per compression level.
    pub points: Vec<ParetoPoint>,
}

impl ParetoReport {
    /// This report with its non-deterministic wall-clock timing zeroed out
    /// (points carry no timing), for bit-identity comparisons.
    pub fn deterministic_view(&self) -> ParetoReport {
        ParetoReport {
            wall_secs: 0.0,
            ..self.clone()
        }
    }
}

/// The levels `--pareto` sweeps: the uncompressed baseline, lossless
/// merging, and a ladder of quantization tolerances up to the conformance
/// tolerance itself.
pub fn default_pareto_levels() -> Vec<CompressionLevel> {
    vec![
        CompressionLevel::Off,
        CompressionLevel::Lossless,
        CompressionLevel::Lossy { epsilon: 0.005 },
        CompressionLevel::Lossy { epsilon: 0.01 },
        CompressionLevel::Lossy {
            epsilon: DEFAULT_EPSILON,
        },
        CompressionLevel::Lossy {
            epsilon: DEFAULT_TOLERANCE,
        },
    ]
}

/// Sweeps the grid once per compression level and aggregates each run into
/// a [`ParetoPoint`]. The fake-node ratio is relative to the
/// [`CompressionLevel::Off`] point when present (the default levels lead
/// with it), otherwise to the largest fake-node total seen.
pub fn run_pareto(
    grid: &SweepGrid,
    threads: usize,
    tolerance: f64,
    levels: &[CompressionLevel],
) -> Result<ParetoReport, CoreError> {
    let started = Instant::now();
    let mut runs = Vec::with_capacity(levels.len());
    for &level in levels {
        runs.push((level, run_conformance_with(grid, threads, tolerance, level)?));
    }
    let baseline = runs
        .iter()
        .find(|(level, _)| level.is_off())
        .map(|(_, report)| report.total_fake_nodes())
        .or_else(|| runs.iter().map(|(_, r)| r.total_fake_nodes()).max())
        .unwrap_or(0);
    let points = runs
        .iter()
        .map(|(level, report)| ParetoPoint {
            level: level.label(),
            epsilon: level.epsilon(),
            fake_nodes: report.total_fake_nodes(),
            prefix_advertisements: report.total_prefix_advertisements(),
            fake_node_ratio: if baseline == 0 {
                1.0
            } else {
                report.total_fake_nodes() as f64 / baseline as f64
            },
            max_split_error: report.worst_split_error(),
            max_utilization_delta: report.worst_utilization_delta(),
            cells_within_tolerance: report.pass_count(),
        })
        .collect();
    Ok(ParetoReport {
        threads: runs
            .first()
            .map(|(_, report)| report.threads)
            .unwrap_or_else(|| WorkerPool::new(threads).threads()),
        cells: grid.specs.len(),
        tolerance,
        wall_secs: started.elapsed().as_secs_f64(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{BaseModel, Effort, WeightHeuristic};

    fn abilene_spec(model: BaseModel) -> SweepSpec {
        SweepSpec {
            topology: "Abilene".into(),
            model,
            margin: 2.0,
            heuristic: WeightHeuristic::InverseCapacity,
            effort: Effort::Quick,
        }
    }

    #[test]
    fn abilene_cell_conforms_end_to_end() {
        let record = conformance_record(&abilene_spec(BaseModel::Gravity), DEFAULT_TOLERANCE)
            .expect("conformance");
        assert!(
            record.dags_match,
            "realized DAGs diverged from the intended DAGs"
        );
        assert!(record.faithful, "split error {}", record.max_split_error);
        assert!(
            record.within_tolerance,
            "util delta {} / drop delta {} above {DEFAULT_TOLERANCE}",
            record.max_utilization_delta, record.drop_rate_delta
        );
        // The optimized splits are not plain ECMP everywhere, so the program
        // must actually lie.
        assert!(record.fake_nodes > 0);
        assert!(record.max_fake_nodes_per_destination <= record.fake_nodes);
        // Simulated utilizations are capped by the drop model.
        for mc in [&record.base, &record.worst] {
            for s in [&mc.intended, &mc.realized] {
                assert!(s.max_utilization <= 1.0 + 1e-9);
                assert!(s.delivered <= s.offered + 1e-9);
                assert!((0.0..=1.0).contains(&s.drop_rate));
            }
        }
    }

    #[test]
    fn unknown_topology_fails_with_a_clear_error() {
        let mut spec = abilene_spec(BaseModel::Gravity);
        spec.topology = "NoSuchNet".into();
        let err =
            run_conformance(&SweepGrid { specs: vec![spec] }, 1, DEFAULT_TOLERANCE).unwrap_err();
        assert!(err.to_string().contains("NoSuchNet"), "{err}");
    }

    #[test]
    fn compressed_cell_keeps_the_verdict_with_far_fewer_fakes() {
        let spec = abilene_spec(BaseModel::Gravity);
        let plain = conformance_record(&spec, DEFAULT_TOLERANCE).expect("plain");
        let lossy = conformance_record_with(&spec, DEFAULT_TOLERANCE, CompressionLevel::lossy())
            .expect("lossy");
        assert!(lossy.dags_match, "compression changed the DAG support");
        assert!(
            lossy.within_tolerance,
            "split {} util {} drop {}",
            lossy.max_split_error, lossy.max_utilization_delta, lossy.drop_rate_delta
        );
        assert_eq!(plain.within_tolerance, lossy.within_tolerance);
        // The headline claim, at unit-test scale: >= 10x fewer forged LSAs.
        assert!(
            lossy.fake_nodes * 10 <= plain.fake_nodes,
            "only {} -> {} fake nodes",
            plain.fake_nodes,
            lossy.fake_nodes
        );
        assert!(lossy.prefix_advertisements >= lossy.fake_nodes);
        assert_eq!(plain.compression, "off");
        assert_eq!(lossy.compression, "lossy(0.02)");
        assert_eq!(plain.prefix_advertisements, plain.fake_nodes);
    }

    #[test]
    fn pareto_points_follow_the_level_order() {
        let grid = SweepGrid {
            specs: vec![abilene_spec(BaseModel::Gravity)],
        };
        let levels = [
            CompressionLevel::Off,
            CompressionLevel::Lossless,
            CompressionLevel::lossy(),
        ];
        let report = run_pareto(&grid, 1, DEFAULT_TOLERANCE, &levels).expect("pareto");
        assert_eq!(report.points.len(), 3);
        assert_eq!(report.cells, 1);
        let off = &report.points[0];
        assert_eq!(off.level, "off");
        assert_eq!(off.fake_node_ratio, 1.0);
        assert_eq!(off.cells_within_tolerance, 1);
        // Each successive level only ever shrinks the program.
        for pair in report.points.windows(2) {
            assert!(pair[1].fake_nodes <= pair[0].fake_nodes);
        }
        // Losslessness really is lossless.
        assert_eq!(report.points[1].max_split_error, off.max_split_error);
        assert_eq!(
            report.deterministic_view().points,
            report.points,
            "points must carry no timing"
        );
    }

    #[test]
    fn report_aggregates_pass_counts() {
        let grid = SweepGrid {
            specs: vec![abilene_spec(BaseModel::Gravity)],
        };
        let report = run_conformance(&grid, 1, DEFAULT_TOLERANCE).expect("run");
        assert_eq!(report.cells, 1);
        assert_eq!(report.tolerance, DEFAULT_TOLERANCE);
        assert_eq!(report.pass_count(), 1);
        assert!(report.all_within_tolerance());
        assert!(report.worst_utilization_delta() <= DEFAULT_TOLERANCE);
        assert!(report.cpu_secs() > 0.0);
    }
}
