//! The differential suite of the serving layer (ISSUE 10 satellite): on
//! Abilene and NSF, drive the engine through seeded sequences of demand
//! updates and link/node events and assert that the incrementally maintained
//! state — LSDB advanced by applying the emitted deltas, warm-cache
//! re-solves, per-prefix recompiles — is **bit-identical** to a cold
//! recompile of the current scenario at every single step (FIB next-hop
//! sets, replica counts and splitting ratios included; see
//! `TeEngine::verify_against_cold`).

use coyote_serve::{DemandModel, DemandUpdate, EngineConfig, TeEngine};

/// xorshift64* — deterministic without a rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn assert_identical(engine: &TeEngine, context: &str) {
    let check = engine.verify_against_cold().unwrap();
    assert!(
        check.identical,
        "incremental state diverged from cold recompile after {context}: {}",
        check.detail
    );
}

/// Seeded mixed sequence: demand updates, link down/up, one node flap.
fn drive(topology: &str, seed: u64, steps: usize) {
    let config = EngineConfig {
        topology: topology.to_string(),
        model: DemandModel::Gravity { total: Some(50.0) },
        budget: 5,
    };
    let mut engine = TeEngine::new(&config).unwrap();
    assert_identical(&engine, "startup");

    let n = engine.pristine_graph().node_count() as u64;
    // Physical links of the pristine graph as canonical node pairs.
    let links: Vec<(usize, usize)> = {
        let g = engine.pristine_graph();
        let mut pairs: Vec<(usize, usize)> = g
            .edges()
            .map(|e| {
                let (a, b) = g.endpoints(e);
                (a.index().min(b.index()), a.index().max(b.index()))
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    };

    let mut rng = Rng(seed);
    let mut down: Vec<(usize, usize)> = Vec::new();
    for step in 0..steps {
        match rng.below(3) {
            // Demand update: overwrite a random off-diagonal entry.
            0 => {
                let src = rng.below(n) as usize;
                let dst = (src + 1 + rng.below(n - 1) as usize) % n as usize;
                let rate = rng.below(1000) as f64 / 37.0;
                let out = engine
                    .apply_demand_update(&[DemandUpdate {
                        src: coyote_graph::NodeId(src),
                        dst: coyote_graph::NodeId(dst),
                        rate,
                    }])
                    .unwrap();
                assert!(
                    out.dirty_destinations.len() <= 1,
                    "one overwritten entry dirties at most its destination column"
                );
                assert_identical(&engine, &format!("step {step}: demand {src}->{dst}"));
            }
            // Link down (keep at least half the links alive to stay sane).
            1 if down.len() < links.len() / 2 => {
                let alive: Vec<_> = links.iter().filter(|p| !down.contains(p)).collect();
                let &&(a, b) = &alive[rng.below(alive.len() as u64) as usize];
                let out = engine
                    .apply_link_event(coyote_graph::NodeId(a), coyote_graph::NodeId(b), false)
                    .unwrap();
                assert!(out.router_lsas_replaced);
                assert!(out.immediate_prune.is_some());
                down.push((a, b));
                assert_identical(&engine, &format!("step {step}: link {a}-{b} down"));
            }
            // Link up.
            _ if !down.is_empty() => {
                let (a, b) = down.swap_remove(rng.below(down.len() as u64) as usize);
                engine
                    .apply_link_event(coyote_graph::NodeId(a), coyote_graph::NodeId(b), true)
                    .unwrap();
                assert_identical(&engine, &format!("step {step}: link {a}-{b} up"));
            }
            _ => {}
        }
    }

    // Restore all links and confirm the pristine program is reproduced.
    for (a, b) in down.drain(..) {
        engine
            .apply_link_event(coyote_graph::NodeId(a), coyote_graph::NodeId(b), true)
            .unwrap();
    }
    assert_identical(&engine, "after restoring all links");
}

#[test]
fn abilene_incremental_equals_cold_at_every_step() {
    drive("abilene", 0xC0FFEE, 14);
}

#[test]
fn nsf_incremental_equals_cold_at_every_step() {
    drive("nsf", 0xBEEF, 14);
}

#[test]
fn abilene_survives_a_node_flap() {
    let mut engine = TeEngine::new(&EngineConfig::default()).unwrap();
    let node = coyote_graph::NodeId(3);
    let out = engine.apply_node_event(node, false).unwrap();
    assert!(out.immediate_prune.is_some());
    assert!(
        engine.unroutable_volume() > 0.0,
        "a failed router's demand must be masked as unroutable"
    );
    assert_identical(&engine, "node down");
    engine.apply_node_event(node, true).unwrap();
    assert!(engine.unroutable_volume() == 0.0);
    assert_identical(&engine, "node up");
}

#[test]
fn fib_replicas_match_cold_recompile_bit_for_bit() {
    // Beyond verify_against_cold: compare the realized FIBs entry by entry
    // after a demand + link churn, including wECMP replica counts.
    let mut engine = TeEngine::new(&EngineConfig {
        topology: "nsf".to_string(),
        model: DemandModel::Bimodal { seed: 11 },
        budget: 5,
    })
    .unwrap();
    engine
        .apply_demand_update(&[DemandUpdate {
            src: coyote_graph::NodeId(0),
            dst: coyote_graph::NodeId(5),
            rate: 9.25,
        }])
        .unwrap();
    let g = engine.pristine_graph();
    let (a, b) = g.endpoints(coyote_graph::EdgeId(2));
    engine.apply_link_event(a, b, false).unwrap();

    let cold = engine.cold_rebuild().unwrap();
    let n = engine.pristine_graph().node_count();
    let warm_fib = engine.fib();
    let cold_fib = coyote_ospf::compute_fib(&cold.lsdb, n);
    for t in 0..n {
        for u in 0..n {
            let warm = warm_fib.entry(coyote_graph::NodeId(u), coyote_graph::NodeId(t));
            let cold_e = cold_fib.entry(coyote_graph::NodeId(u), coyote_graph::NodeId(t));
            assert_eq!(
                warm, cold_e,
                "FIB entry router {u} -> prefix {t} differs from cold recompile"
            );
        }
    }
}
