//! Telemetry determinism (ISSUE 10 satellite): the same request sequence
//! against a 1-thread and a 4-thread daemon must yield identical
//! deterministic metrics (counters and value histograms; wall-clock timings
//! are excluded by `Snapshot::deterministic`). Runs in its own integration
//! binary so the process-global obs sink sees no other traffic.

use coyote_serve::{EngineConfig, Server, ServerConfig, TeEngine};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn request(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body.as_bytes()).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let text = String::from_utf8_lossy(&raw);
    let (head, payload) = text.split_once("\r\n\r\n").unwrap();
    let status = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, payload.to_string())
}

/// Runs the canonical request sequence against a fresh daemon with the
/// given worker-thread count and returns the deterministic metrics view.
fn run_session(threads: usize) -> coyote_obs::Snapshot {
    let registry = Arc::new(coyote_obs::Registry::new());
    coyote_obs::install(Arc::clone(&registry));
    let engine = TeEngine::new(&EngineConfig::default()).unwrap();
    let server = Server::start(
        engine,
        &ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads,
            batch_recompile_micros: None,
        },
    )
    .unwrap();
    let addr = server.addr().to_string();

    assert_eq!(request(&addr, "GET", "/healthz", "").0, 200);
    assert_eq!(request(&addr, "GET", "/state", "").0, 200);
    assert_eq!(request(&addr, "GET", "/program", "").0, 200);
    let (status, body) = request(
        &addr,
        "POST",
        "/demand",
        r#"{"updates":[{"src":0,"dst":4,"rate":7.5}]}"#,
    );
    assert_eq!(status, 200, "{body}");
    let (status, body) = request(&addr, "POST", "/link", r#"{"a":0,"b":1,"up":false}"#);
    assert_eq!(status, 200, "{body}");
    let (status, body) = request(&addr, "POST", "/link", r#"{"a":0,"b":1,"up":true}"#);
    assert_eq!(status, 200, "{body}");
    let (status, body) = request(&addr, "POST", "/recompile", "");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"identical\":true"), "{body}");
    // Client errors must not poison the daemon.
    assert_eq!(request(&addr, "POST", "/demand", "not json").0, 400);
    assert_eq!(request(&addr, "GET", "/nope", "").0, 404);
    assert_eq!(request(&addr, "GET", "/state", "").0, 200);

    server.shutdown();
    server.join();
    coyote_obs::uninstall();
    registry.snapshot().deterministic()
}

#[test]
fn metrics_are_identical_across_worker_thread_counts() {
    let single = run_session(1);
    let quad = run_session(4);
    assert!(
        single.counters.get("serve.http.requests").copied().unwrap_or(0) >= 10,
        "sanity: the sequence was actually recorded"
    );
    assert_eq!(
        single, quad,
        "deterministic telemetry must not depend on worker thread count"
    );
}
