//! Wire types of the daemon's JSON responses.

use crate::engine::TeEngine;
use serde::Serialize;

/// One link's utilization in a [`StateResponse`].
#[derive(Debug, Clone, Serialize)]
pub struct LinkUtilization {
    /// Source router name.
    pub src: String,
    /// Destination router name.
    pub dst: String,
    /// Load divided by capacity.
    pub utilization: f64,
}

/// Latency percentiles over a recorded series, microseconds.
#[derive(Debug, Clone, Default, Serialize)]
pub struct LatencyStats {
    /// Number of samples.
    pub count: usize,
    /// Median.
    pub p50_micros: u64,
    /// 99th percentile (max for short series).
    pub p99_micros: u64,
    /// Maximum.
    pub max_micros: u64,
}

impl LatencyStats {
    /// Percentiles of `samples` (nearest-rank on the sorted series).
    pub fn of(samples: &[u64]) -> LatencyStats {
        if samples.is_empty() {
            return LatencyStats::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = |p: f64| -> u64 {
            let idx = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            sorted[idx - 1]
        };
        LatencyStats {
            count: sorted.len(),
            p50_micros: rank(0.50),
            p99_micros: rank(0.99),
            max_micros: *sorted.last().expect("non-empty"),
        }
    }
}

/// `GET /state`: the daemon's full telemetry snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct StateResponse {
    /// Topology name.
    pub topology: String,
    /// Engine epoch (applied updates).
    pub epoch: u64,
    /// Routers in the topology.
    pub nodes: usize,
    /// Directed edges currently alive.
    pub edges_alive: usize,
    /// Directed edges in the pristine topology.
    pub edges_total: usize,
    /// Currently failed links as `[low, high]` node-index pairs.
    pub failed_links: Vec<[usize; 2]>,
    /// Currently failed nodes.
    pub failed_nodes: Vec<usize>,
    /// Fake nodes currently advertised.
    pub fake_nodes: usize,
    /// Prefix advertisements currently flooded.
    pub prefix_advertisements: usize,
    /// Max link utilization of the current routing on the current demands.
    pub max_utilization: f64,
    /// Total demand volume.
    pub demand_total: f64,
    /// Demand volume masked as unroutable by failures.
    pub unroutable_volume: f64,
    /// Per-link utilizations.
    pub links: Vec<LinkUtilization>,
    /// Re-optimization latency of demand updates.
    pub demand_reopt: LatencyStats,
    /// Re-optimization latency of link/node events.
    pub event_reopt: LatencyStats,
    /// Batch-pipeline comparator, microseconds (the full-grid recompile the
    /// CLI would run for the same scenario), when measured at startup.
    pub batch_recompile_micros: Option<u64>,
}

impl StateResponse {
    /// Snapshots `engine` into a response.
    pub fn of(engine: &TeEngine, batch_recompile_micros: Option<u64>) -> StateResponse {
        let (demand, event) = engine.reopt_micros();
        StateResponse {
            topology: engine.topology_name().to_string(),
            epoch: engine.epoch(),
            nodes: engine.pristine_graph().node_count(),
            edges_alive: engine.current_graph().edge_count(),
            edges_total: engine.pristine_graph().edge_count(),
            failed_links: engine.failed_links().map(|(a, b)| [a, b]).collect(),
            failed_nodes: engine.failed_nodes().collect(),
            fake_nodes: engine.lsdb().fake_count(),
            prefix_advertisements: engine.lsdb().prefix_advertisement_count(),
            max_utilization: engine.max_utilization(),
            demand_total: engine.demands().total(),
            unroutable_volume: engine.unroutable_volume(),
            links: engine
                .link_utilizations()
                .into_iter()
                .map(|(src, dst, utilization)| LinkUtilization {
                    src,
                    dst,
                    utilization,
                })
                .collect(),
            demand_reopt: LatencyStats::of(demand),
            event_reopt: LatencyStats::of(event),
            batch_recompile_micros,
        }
    }
}

/// `GET /program`: summary of the compiled Fibbing program.
#[derive(Debug, Clone, Serialize)]
pub struct ProgramResponse {
    /// Fake nodes currently advertised.
    pub fake_nodes: usize,
    /// Prefix advertisements currently flooded.
    pub prefix_advertisements: usize,
    /// Per-destination fake-node counts, indexed by destination.
    pub fakes_per_destination: Vec<usize>,
}

impl ProgramResponse {
    /// Snapshots `engine`'s program into a response.
    pub fn of(engine: &TeEngine) -> ProgramResponse {
        let lsdb = engine.lsdb();
        ProgramResponse {
            fake_nodes: lsdb.fake_count(),
            prefix_advertisements: lsdb.prefix_advertisement_count(),
            fakes_per_destination: engine
                .pristine_graph()
                .nodes()
                .map(|t| lsdb.fakes_for(t).count())
                .collect(),
        }
    }
}

/// Error body for non-2xx responses.
#[derive(Debug, Clone, Serialize)]
pub struct ErrorResponse {
    /// Human-readable description.
    pub error: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_use_nearest_rank() {
        let stats = LatencyStats::of(&[10, 20, 30, 40]);
        assert_eq!(stats.count, 4);
        assert_eq!(stats.p50_micros, 20);
        assert_eq!(stats.p99_micros, 40);
        assert_eq!(stats.max_micros, 40);
        assert_eq!(LatencyStats::of(&[]).count, 0);
        assert_eq!(LatencyStats::of(&[7]).p50_micros, 7);
    }
}
