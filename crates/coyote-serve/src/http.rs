//! The daemon itself: a hand-rolled threaded HTTP/1.1 server.
//!
//! Zero dependencies beyond `std`, in keeping with the workspace's vendored
//! offline style: a `TcpListener` shared by N worker threads (each `accept`s
//! on its own clone), one request per connection (`Connection: close`), and
//! a `Mutex<TeEngine>` as the single source of truth — updates serialize,
//! which is exactly the semantics a Fibbing controller wants (deltas are
//! ordered by epoch).
//!
//! | Method | Path         | Body                                   | Reply |
//! |--------|--------------|----------------------------------------|-------|
//! | GET    | `/healthz`   | —                                      | liveness probe |
//! | GET    | `/state`     | —                                      | [`StateResponse`] telemetry |
//! | GET    | `/program`   | —                                      | [`ProgramResponse`] |
//! | GET    | `/metrics`   | —                                      | obs snapshot (JSON) |
//! | POST   | `/demand`    | `{"updates":[{src,dst,rate},…]}`       | [`UpdateOutcome`] |
//! | POST   | `/link`      | `{"a":…,"b":…,"up":bool}`              | [`UpdateOutcome`] |
//! | POST   | `/node`      | `{"node":…,"up":bool}`                 | [`UpdateOutcome`] |
//! | POST   | `/recompile` | —                                      | [`ColdCheck`] differential check |
//! | POST   | `/shutdown`  | —                                      | stops the daemon |
//!
//! Router identifiers in bodies may be names (`"Denver"`) or indices (`3`).

use crate::api::{ErrorResponse, ProgramResponse, StateResponse};
use crate::engine::{ColdCheck, DemandUpdate, TeEngine, UpdateOutcome};
use crate::error::ServeError;
use crate::json::{self, JsonValue};
use coyote_graph::NodeId;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Server startup options.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads accepting connections.
    pub threads: usize,
    /// Batch-pipeline comparator measured at startup (exposed in `/state`).
    pub batch_recompile_micros: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            batch_recompile_micros: None,
        }
    }
}

/// A running daemon; dropping it does **not** stop the workers — call
/// [`Server::shutdown`] then [`Server::join`] (or POST `/shutdown`).
pub struct Server {
    addr: SocketAddr,
    handles: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

struct Shared {
    engine: Mutex<TeEngine>,
    shutdown: AtomicBool,
    batch_recompile_micros: Option<u64>,
}

impl Server {
    /// Binds the listener and spawns the worker threads.
    pub fn start(engine: TeEngine, config: &ServerConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: Mutex::new(engine),
            shutdown: AtomicBool::new(false),
            batch_recompile_micros: config.batch_recompile_micros,
        });
        let threads = config.threads.max(1);
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            let listener = listener.try_clone()?;
            let shared = Arc::clone(&shared);
            handles.push(std::thread::spawn(move || worker(listener, shared)));
        }
        Ok(Server {
            addr,
            handles,
            shared,
        })
    }

    /// The address the daemon actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown (same effect as POST `/shutdown`).
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        wake_workers(self.addr, self.handles.len());
    }

    /// Waits for every worker to exit.
    pub fn join(self) {
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

/// Unblocks workers parked in `accept` by connecting once per thread.
fn wake_workers(addr: SocketAddr, count: usize) {
    for _ in 0..count + 1 {
        let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(200));
    }
}

fn worker(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let should_stop = handle_connection(stream, &shared);
        if should_stop {
            shared.shutdown.store(true, Ordering::SeqCst);
            wake_workers(listener.local_addr().expect("listener has an address"), 8);
            return;
        }
    }
}

/// Handles one request; returns true when the client asked for shutdown.
fn handle_connection(mut stream: TcpStream, shared: &Shared) -> bool {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let (method, path, body) = match read_request(&mut stream) {
        Ok(parts) => parts,
        Err(_) => return false, // wake-up probe or malformed preamble
    };
    coyote_obs::counter("serve.http.requests", 1);
    let stop = method == "POST" && path == "/shutdown";
    let (status, payload) = dispatch(&method, &path, &body, shared);
    let _ = write_response(&mut stream, status, &payload);
    stop
}

fn read_request(stream: &mut TcpStream) -> Result<(String, String, String), ServeError> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    let header_end = loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(ServeError::BadRequest("connection closed".into()));
        }
        buf.extend_from_slice(&chunk[..n]);
        if let Some(idx) = find_header_end(&buf) {
            break idx;
        }
        if buf.len() > 64 * 1024 {
            return Err(ServeError::BadRequest("headers too large".into()));
        }
    };
    let head = String::from_utf8_lossy(&buf[..header_end]).to_string();
    let mut lines = head.lines();
    let request_line = lines
        .next()
        .ok_or_else(|| ServeError::BadRequest("empty request".into()))?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ServeError::BadRequest("missing method".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ServeError::BadRequest("missing path".into()))?
        .to_string();
    let content_length = lines
        .filter_map(|line| {
            let (name, value) = line.split_once(':')?;
            name.eq_ignore_ascii_case("content-length")
                .then(|| value.trim().parse::<usize>().ok())?
        })
        .next()
        .unwrap_or(0);
    if content_length > 16 * 1024 * 1024 {
        return Err(ServeError::BadRequest("body too large".into()));
    }
    let mut body = buf[header_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    Ok((
        method,
        path,
        String::from_utf8_lossy(&body).to_string(),
    ))
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

fn dispatch(method: &str, path: &str, body: &str, shared: &Shared) -> (u16, String) {
    let result: Result<String, ServeError> = match (method, path) {
        ("GET", "/healthz") => Ok("{\"ok\":true}".to_string()),
        ("GET", "/state") => {
            let engine = shared.engine.lock().expect("engine lock poisoned");
            encode(&StateResponse::of(&engine, shared.batch_recompile_micros))
        }
        ("GET", "/program") => {
            let engine = shared.engine.lock().expect("engine lock poisoned");
            encode(&ProgramResponse::of(&engine))
        }
        ("GET", "/metrics") => Ok(match coyote_obs::installed() {
            Some(registry) => coyote_obs::metrics_json(&registry.snapshot()),
            None => "{}".to_string(),
        }),
        ("POST", "/demand") => post_demand(body, shared).and_then(|o| encode(&o)),
        ("POST", "/link") => post_link(body, shared).and_then(|o| encode(&o)),
        ("POST", "/node") => post_node(body, shared).and_then(|o| encode(&o)),
        ("POST", "/recompile") => post_recompile(shared).and_then(|o| encode(&o)),
        ("POST", "/shutdown") => Ok("{\"ok\":true,\"stopping\":true}".to_string()),
        ("GET", _) | ("POST", _) => {
            return (
                404,
                encode(&ErrorResponse {
                    error: format!("no such endpoint: {path}"),
                })
                .unwrap_or_default(),
            )
        }
        _ => {
            return (
                405,
                encode(&ErrorResponse {
                    error: format!("method {method} not allowed"),
                })
                .unwrap_or_default(),
            )
        }
    };
    match result {
        Ok(body) => (200, body),
        Err(e) => {
            let status = if e.is_bad_request() { 400 } else { 500 };
            (
                status,
                encode(&ErrorResponse {
                    error: e.to_string(),
                })
                .unwrap_or_default(),
            )
        }
    }
}

fn encode<T: serde::Serialize>(value: &T) -> Result<String, ServeError> {
    serde_json::to_string(value)
        .map_err(|e| ServeError::BadRequest(format!("serialization failed: {e}")))
}

/// Resolves a router identifier that may be a JSON string (name or decimal
/// index) or a JSON number.
fn node_of(engine: &TeEngine, value: Option<&JsonValue>, field: &str) -> Result<NodeId, ServeError> {
    let value = value.ok_or_else(|| ServeError::BadRequest(format!("missing field {field:?}")))?;
    match value {
        JsonValue::String(s) => engine.resolve_node(s),
        JsonValue::Number(n) if n.fract() == 0.0 && *n >= 0.0 => {
            engine.resolve_node(&format!("{}", *n as u64))
        }
        _ => Err(ServeError::BadRequest(format!(
            "field {field:?} must be a router name or index"
        ))),
    }
}

fn parse_body(body: &str) -> Result<JsonValue, ServeError> {
    json::parse(body).map_err(|e| ServeError::BadRequest(format!("invalid JSON body: {e}")))
}

fn post_demand(body: &str, shared: &Shared) -> Result<UpdateOutcome, ServeError> {
    let doc = parse_body(body)?;
    let raw = doc
        .get("updates")
        .and_then(|u| u.as_array())
        .ok_or_else(|| ServeError::BadRequest("body needs an \"updates\" array".into()))?;
    let mut engine = shared.engine.lock().expect("engine lock poisoned");
    let mut updates = Vec::with_capacity(raw.len());
    for item in raw {
        updates.push(DemandUpdate {
            src: node_of(&engine, item.get("src"), "src")?,
            dst: node_of(&engine, item.get("dst"), "dst")?,
            rate: item
                .get("rate")
                .and_then(|r| r.as_f64())
                .ok_or_else(|| ServeError::BadRequest("missing numeric \"rate\"".into()))?,
        });
    }
    engine.apply_demand_update(&updates)
}

fn post_link(body: &str, shared: &Shared) -> Result<UpdateOutcome, ServeError> {
    let doc = parse_body(body)?;
    let up = doc.get("up").and_then(|u| u.as_bool()).unwrap_or(false);
    let mut engine = shared.engine.lock().expect("engine lock poisoned");
    let a = node_of(&engine, doc.get("a"), "a")?;
    let b = node_of(&engine, doc.get("b"), "b")?;
    engine.apply_link_event(a, b, up)
}

fn post_node(body: &str, shared: &Shared) -> Result<UpdateOutcome, ServeError> {
    let doc = parse_body(body)?;
    let up = doc.get("up").and_then(|u| u.as_bool()).unwrap_or(false);
    let mut engine = shared.engine.lock().expect("engine lock poisoned");
    let node = node_of(&engine, doc.get("node"), "node")?;
    engine.apply_node_event(node, up)
}

fn post_recompile(shared: &Shared) -> Result<ColdCheck, ServeError> {
    let engine = shared.engine.lock().expect("engine lock poisoned");
    engine.verify_against_cold()
}
