//! A minimal JSON parser for request bodies.
//!
//! The workspace's vendored `serde_json` stand-in is serialize-only (the
//! batch pipeline never needed to read JSON), so the daemon brings its own
//! recursive-descent parser: objects, arrays, strings with the standard
//! escapes, numbers, booleans and null. Depth-limited; no trailing garbage.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with deterministic key order.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects (`None` elsewhere).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses a complete JSON document; rejects trailing non-whitespace.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

const MAX_DEPTH: usize = 64;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep".to_string());
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::String),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("invalid escape".to_string()),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole scalar.
                let tail = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = tail.chars().next().ok_or("invalid utf-8")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos, depth + 1)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true}, "e": null}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn round_trips_with_the_vendored_serializer() {
        // What our serializer emits, our parser must read back.
        #[derive(serde::Serialize)]
        struct Probe {
            name: String,
            values: Vec<f64>,
            flag: bool,
        }
        let text = serde_json::to_string(&Probe {
            name: "αβ \"quoted\"".to_string(),
            values: vec![1.0, 0.25],
            flag: false,
        })
        .unwrap();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("αβ \"quoted\""));
        assert_eq!(v.get("values").unwrap().as_array().unwrap()[1].as_f64(), Some(0.25));
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1, 2",
            "{\"a\": }",
            "\"unterminated",
            "123 456",
            "{\"a\": 1,}",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn depth_limit_is_enforced() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }
}
