//! Error type of the serving layer.

use std::fmt;

/// Anything the daemon can fail with, split by who is at fault: bad client
/// input maps to HTTP 400, everything else to 500.
#[derive(Debug)]
pub enum ServeError {
    /// The client sent something the engine cannot act on (unknown node
    /// name, malformed JSON, link that does not exist, …).
    BadRequest(String),
    /// A core optimization step failed.
    Core(coyote_core::CoreError),
    /// An OSPF/Fibbing step failed.
    Ospf(coyote_ospf::OspfError),
    /// A graph operation failed.
    Graph(coyote_graph::GraphError),
    /// A socket operation failed.
    Io(std::io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Core(e) => write!(f, "optimization error: {e}"),
            ServeError::Ospf(e) => write!(f, "fibbing error: {e}"),
            ServeError::Graph(e) => write!(f, "graph error: {e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<coyote_core::CoreError> for ServeError {
    fn from(e: coyote_core::CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<coyote_ospf::OspfError> for ServeError {
    fn from(e: coyote_ospf::OspfError) -> Self {
        ServeError::Ospf(e)
    }
}

impl From<coyote_graph::GraphError> for ServeError {
    fn from(e: coyote_graph::GraphError) -> Self {
        ServeError::Graph(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl ServeError {
    /// True when the failure is the client's fault (HTTP 400 territory).
    pub fn is_bad_request(&self) -> bool {
        matches!(self, ServeError::BadRequest(_))
    }
}
