//! The incremental TE engine: the daemon's in-memory state machine.
//!
//! The engine holds a scenario (topology + demand matrix + failure set) and
//! the *compiled* artifacts derived from it — augmented DAGs, per-destination
//! splitting ratios, and the lied-to LSDB — and reacts to three kinds of
//! updates:
//!
//! * **Demand updates** dirty exactly the destinations whose demand column
//!   changed ([`coyote_core::demand_dirty_destinations`]); only those are
//!   re-solved and recompiled.
//! * **Link events** and **node events** dirty *every* destination: augmented
//!   DAGs contain each surviving physical link in some orientation, so there
//!   is no per-destination locality to exploit. The win over the batch
//!   pipeline is the policy itself (separable per-destination LPs instead of
//!   the joint oblivious optimization).
//!
//! Every update is materialized as an [`LsaDelta`] and the engine advances
//! its own LSDB **by applying that delta** — the same object a real Fibbing
//! controller would flood — so the differential guarantee ("delta applied to
//! the old LSDB is bit-identical to a cold recompile") is exercised on the
//! production path, not just in tests. [`TeEngine::verify_against_cold`]
//! checks it on demand.
//!
//! The per-destination policy is deliberately *separable* (see
//! [`coyote_core::incremental`]): destination `t`'s solution is a pure
//! function of `(current graph, dag_t, demand column t)`, which is what
//! makes "recompute only the dirty part" equal to "recompute everything"
//! bit for bit.

use crate::error::ServeError;
use coyote_core::{
    build_all_dags, demand_dirty_destinations, solve_destination, DagMode, DestinationSolve,
    PdRouting,
};
use coyote_graph::{Dag, EdgeId, Graph, NodeId};
use coyote_lp::PhaseOneCache;
use coyote_ospf::{
    compile_destination, compute_fib, DestinationLies, Fib, LsaDelta, Lsdb, PrefixUpdate,
    PruneStats, VirtualLinkBudget,
};
use coyote_topology::zoo;
use coyote_traffic::{BimodalModel, DemandMatrix, GravityModel};
use serde::Serialize;
use std::collections::BTreeSet;
use std::time::Instant;

/// How the engine synthesizes its initial demand matrix.
#[derive(Debug, Clone, PartialEq)]
pub enum DemandModel {
    /// Gravity model proportional to outgoing capacities.
    Gravity {
        /// Optional total-volume normalization.
        total: Option<f64>,
    },
    /// Seeded bimodal elephant/mice model.
    Bimodal {
        /// Deterministic seed.
        seed: u64,
    },
}

impl DemandModel {
    fn generate(&self, graph: &Graph) -> DemandMatrix {
        match self {
            DemandModel::Gravity { total: Some(t) } => GravityModel::with_total(*t).generate(graph),
            DemandModel::Gravity { total: None } => GravityModel::default().generate(graph),
            DemandModel::Bimodal { seed } => BimodalModel::with_seed(*seed).generate(graph),
        }
    }
}

/// Startup configuration for a [`TeEngine`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Topology-zoo name (lowercase, e.g. `"abilene"`, `"nsf"`).
    pub topology: String,
    /// Initial demand matrix model.
    pub model: DemandModel,
    /// FIB-entry budget per prefix for the wECMP approximation.
    pub budget: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            topology: "abilene".to_string(),
            model: DemandModel::Gravity { total: Some(100.0) },
            budget: 5,
        }
    }
}

/// A single `(source, destination, rate)` demand override.
#[derive(Debug, Clone)]
pub struct DemandUpdate {
    /// Source router name or index (resolved by the engine).
    pub src: NodeId,
    /// Destination router name or index.
    pub dst: NodeId,
    /// New rate (replaces the current entry; `0.0` deletes it).
    pub rate: f64,
}

/// What a single update did to the engine, returned to the client.
#[derive(Debug, Clone, Serialize)]
pub struct UpdateOutcome {
    /// Engine epoch after the update (increments once per applied update).
    pub epoch: u64,
    /// Update kind: `"demand"`, `"link"` or `"node"`.
    pub kind: &'static str,
    /// Destinations that were re-solved and recompiled.
    pub dirty_destinations: Vec<usize>,
    /// Prefixes the emitted delta actually re-advertises (dirty destinations
    /// whose lie set changed content-wise).
    pub delta_prefixes: usize,
    /// Lies injected by the delta.
    pub delta_fakes_added: usize,
    /// Lies retracted by the delta.
    pub delta_fakes_retracted: usize,
    /// True when the delta carries replacement router LSAs (topology event).
    pub router_lsas_replaced: bool,
    /// Wall-clock time of the incremental re-optimization, microseconds.
    pub reopt_micros: u64,
    /// Max link utilization of the new routing on the current demands.
    pub max_utilization: f64,
    /// Demand volume currently unroutable (source cut off by failures).
    pub unroutable_volume: f64,
    /// OSPF's immediate reaction to a failure (LSAs withdrawn before the
    /// controller re-optimized), when the update was a down event.
    pub immediate_prune: Option<PruneStats>,
}

/// Result of [`TeEngine::verify_against_cold`]: the differential check.
#[derive(Debug, Clone, Serialize)]
pub struct ColdCheck {
    /// True when the incrementally-maintained state is bit-identical to a
    /// cold recompile (LSDB, FIB and splitting ratios all agree exactly).
    pub identical: bool,
    /// Wall-clock time of the cold rebuild, microseconds.
    pub cold_micros: u64,
    /// Human-readable mismatch description (empty when identical).
    pub detail: String,
}

/// Everything a cold recompile of the current scenario produces.
pub struct ColdState {
    /// The augmented DAGs of the surviving graph.
    pub dags: Vec<Dag>,
    /// The separable routing.
    pub routing: PdRouting,
    /// The lied-to LSDB.
    pub lsdb: Lsdb,
    /// Per-destination solves.
    pub solves: Vec<DestinationSolve>,
    /// Per-destination lies (pre-injection).
    pub lies: Vec<DestinationLies>,
    /// Wall-clock time of the rebuild, microseconds.
    pub micros: u64,
}

/// The long-running incremental TE engine.
pub struct TeEngine {
    name: String,
    budget: VirtualLinkBudget,
    pristine: Graph,
    failed_links: BTreeSet<(usize, usize)>,
    failed_nodes: BTreeSet<usize>,
    current: Graph,
    demands: DemandMatrix,
    dags: Vec<Dag>,
    caches: Vec<PhaseOneCache>,
    solves: Vec<DestinationSolve>,
    lies: Vec<DestinationLies>,
    routing: PdRouting,
    lsdb: Lsdb,
    epoch: u64,
    demand_reopt_micros: Vec<u64>,
    event_reopt_micros: Vec<u64>,
}

impl TeEngine {
    /// Loads the topology, synthesizes the demand matrix and compiles the
    /// initial Fibbing program.
    pub fn new(config: &EngineConfig) -> Result<TeEngine, ServeError> {
        let topo = zoo::by_name(&config.topology).ok_or_else(|| {
            ServeError::BadRequest(format!("unknown topology {:?}", config.topology))
        })?;
        let mut pristine = topo.to_graph()?;
        pristine.set_inverse_capacity_weights(10.0);
        let demands = config.model.generate(&pristine);
        let n = pristine.node_count();
        let mut engine = TeEngine {
            name: config.topology.clone(),
            budget: VirtualLinkBudget::per_prefix(config.budget),
            current: pristine.clone(),
            pristine,
            failed_links: BTreeSet::new(),
            failed_nodes: BTreeSet::new(),
            demands,
            dags: Vec::new(),
            caches: (0..n).map(|_| PhaseOneCache::new()).collect(),
            solves: Vec::new(),
            lies: Vec::new(),
            routing: PdRouting::uniform(&Graph::new(), Vec::new()),
            lsdb: Lsdb::with_router_lsas(Vec::new()),
            epoch: 0,
            demand_reopt_micros: Vec::new(),
            event_reopt_micros: Vec::new(),
        };
        let cold = engine.cold_rebuild()?;
        engine.dags = cold.dags;
        engine.routing = cold.routing;
        engine.lsdb = cold.lsdb;
        engine.solves = cold.solves;
        engine.lies = cold.lies;
        coyote_obs::counter("serve.engine.starts", 1);
        Ok(engine)
    }

    /// Topology name the engine was started with.
    pub fn topology_name(&self) -> &str {
        &self.name
    }

    /// Engine epoch (number of applied updates).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The currently surviving graph.
    pub fn current_graph(&self) -> &Graph {
        &self.current
    }

    /// The pristine (no-failure) graph.
    pub fn pristine_graph(&self) -> &Graph {
        &self.pristine
    }

    /// The current demand matrix.
    pub fn demands(&self) -> &DemandMatrix {
        &self.demands
    }

    /// The current separable routing.
    pub fn routing(&self) -> &PdRouting {
        &self.routing
    }

    /// The current lied-to LSDB.
    pub fn lsdb(&self) -> &Lsdb {
        &self.lsdb
    }

    /// Per-destination solves (indexed by destination).
    pub fn solves(&self) -> &[DestinationSolve] {
        &self.solves
    }

    /// Currently failed links as canonical `(low, high)` node-index pairs.
    pub fn failed_links(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.failed_links.iter().copied()
    }

    /// Currently failed nodes.
    pub fn failed_nodes(&self) -> impl Iterator<Item = usize> + '_ {
        self.failed_nodes.iter().copied()
    }

    /// Re-optimization latencies recorded so far, microseconds, split into
    /// `(demand updates, topology events)`.
    pub fn reopt_micros(&self) -> (&[u64], &[u64]) {
        (&self.demand_reopt_micros, &self.event_reopt_micros)
    }

    /// The FIB every router computes from the current LSDB.
    pub fn fib(&self) -> Fib {
        compute_fib(&self.lsdb, self.pristine.node_count())
    }

    /// Resolves a router given either its name or its decimal index.
    pub fn resolve_node(&self, ident: &str) -> Result<NodeId, ServeError> {
        if let Ok(idx) = ident.parse::<usize>() {
            if idx < self.pristine.node_count() {
                return Ok(NodeId(idx));
            }
            return Err(ServeError::BadRequest(format!(
                "node index {idx} out of range (topology has {} nodes)",
                self.pristine.node_count()
            )));
        }
        self.pristine
            .node_by_name(ident)
            .map_err(|_| ServeError::BadRequest(format!("unknown router {ident:?}")))
    }

    /// Total demand volume currently masked as unroutable.
    pub fn unroutable_volume(&self) -> f64 {
        self.solves.iter().map(|s| s.unroutable_volume).sum()
    }

    /// Max link utilization of the current routing on the current demands.
    pub fn max_utilization(&self) -> f64 {
        if self.current.edge_count() == 0 {
            return 0.0;
        }
        self.routing.max_link_utilization(&self.current, &self.demands)
    }

    /// Per-link utilizations of the current routing on the current demands,
    /// as `(src_name, dst_name, utilization)` in edge order.
    pub fn link_utilizations(&self) -> Vec<(String, String, f64)> {
        let loads = self.routing.edge_loads(&self.current, &self.demands);
        self.current
            .edges()
            .map(|e| {
                let (a, b) = self.current.endpoints(e);
                (
                    self.current.node_name(a).to_string(),
                    self.current.node_name(b).to_string(),
                    loads[e.index()] / self.current.capacity(e),
                )
            })
            .collect()
    }

    /// Applies a batch of demand overrides: re-solves exactly the dirty
    /// destination columns, emits the per-prefix delta and advances the LSDB
    /// by applying it.
    pub fn apply_demand_update(
        &mut self,
        updates: &[DemandUpdate],
    ) -> Result<UpdateOutcome, ServeError> {
        let start = Instant::now();
        let mut new_dm = self.demands.clone();
        for u in updates {
            if u.src == u.dst {
                return Err(ServeError::BadRequest(format!(
                    "self-demand {} -> {} is not allowed",
                    u.src.index(),
                    u.dst.index()
                )));
            }
            if !u.rate.is_finite() || u.rate < 0.0 {
                return Err(ServeError::BadRequest(format!(
                    "demand rate must be finite and non-negative, got {}",
                    u.rate
                )));
            }
            new_dm.set(u.src, u.dst, u.rate);
        }
        let dirty = demand_dirty_destinations(&self.demands, &new_dm);
        for &t in &dirty {
            self.solves[t.index()] = solve_destination(
                &self.current,
                &self.dags[t.index()],
                &new_dm,
                t,
                &mut self.caches[t.index()],
            )?;
        }
        let routing = self.assemble_routing();
        let delta = self.compile_delta(&routing, &dirty, None)?;
        let outcome = self.commit(routing, new_dm, delta, "demand", &dirty, None, start)?;
        self.demand_reopt_micros.push(outcome.reopt_micros);
        Ok(outcome)
    }

    /// Applies a link up/down event. `a`/`b` name the physical link's
    /// endpoints; both directed edges fail together. Every destination is
    /// dirty (augmented DAGs contain each link in some orientation), so the
    /// whole program is re-solved on the surviving graph — still through the
    /// delta path, so the differential guarantee holds.
    pub fn apply_link_event(
        &mut self,
        a: NodeId,
        b: NodeId,
        up: bool,
    ) -> Result<UpdateOutcome, ServeError> {
        let start = Instant::now();
        if a == b {
            return Err(ServeError::BadRequest("link endpoints must differ".into()));
        }
        if self.pristine.find_edge(a, b).is_none() && self.pristine.find_edge(b, a).is_none() {
            return Err(ServeError::BadRequest(format!(
                "no physical link between {} and {}",
                self.pristine.node_name(a),
                self.pristine.node_name(b)
            )));
        }
        let pair = canonical(a, b);
        let prune = if up {
            if !self.failed_links.remove(&pair) {
                return Err(ServeError::BadRequest(format!(
                    "link {}-{} is not down",
                    self.pristine.node_name(a),
                    self.pristine.node_name(b)
                )));
            }
            None
        } else {
            if !self.failed_links.insert(pair) {
                return Err(ServeError::BadRequest(format!(
                    "link {}-{} is already down",
                    self.pristine.node_name(a),
                    self.pristine.node_name(b)
                )));
            }
            // OSPF's immediate reaction, before the controller re-optimizes:
            // how much state the failure withdraws on its own.
            Some(self.lsdb.pruned(&[], &[(a, b)]).1)
        };
        self.apply_topology_event("link", prune, start)
    }

    /// Applies a node up/down event: all links incident to the router fail
    /// (or recover) together. The router stays in the graph as an isolated
    /// node so ids and matrix dimensions are preserved; its demand is masked
    /// as unroutable while it is down.
    pub fn apply_node_event(&mut self, node: NodeId, up: bool) -> Result<UpdateOutcome, ServeError> {
        let start = Instant::now();
        let prune = if up {
            if !self.failed_nodes.remove(&node.index()) {
                return Err(ServeError::BadRequest(format!(
                    "node {} is not down",
                    self.pristine.node_name(node)
                )));
            }
            None
        } else {
            if !self.failed_nodes.insert(node.index()) {
                return Err(ServeError::BadRequest(format!(
                    "node {} is already down",
                    self.pristine.node_name(node)
                )));
            }
            Some(self.lsdb.pruned(&[node], &[]).1)
        };
        self.apply_topology_event("node", prune, start)
    }

    /// Recomputes everything from `(pristine, failure sets, demands)` with
    /// fresh caches — the reference the incremental path must match bit for
    /// bit.
    pub fn cold_rebuild(&self) -> Result<ColdState, ServeError> {
        let start = Instant::now();
        let current = self.surviving_graph();
        let n = current.node_count();
        let dags = build_all_dags(&current, DagMode::Augmented).map_err(coyote_core::CoreError::from)?;
        let mut caches: Vec<PhaseOneCache> = (0..n).map(|_| PhaseOneCache::new()).collect();
        let (routing, solves) =
            coyote_core::separable_routing(&current, &dags, &self.demands, &mut caches)?;
        let base = Lsdb::from_graph(&current);
        let mut lies = Vec::with_capacity(n);
        let mut lsdb = Lsdb::from_graph(&current);
        for t in current.nodes() {
            let per_dest = compile_destination(&current, &base, &routing, t, self.budget)?;
            for lie in &per_dest.lies {
                lsdb.inject(lie.clone());
            }
            lies.push(per_dest);
        }
        Ok(ColdState {
            dags,
            routing,
            lsdb,
            solves,
            lies,
            micros: start.elapsed().as_micros() as u64,
        })
    }

    /// The differential check: is the incrementally-maintained state
    /// bit-identical to a cold recompile of the current scenario?
    pub fn verify_against_cold(&self) -> Result<ColdCheck, ServeError> {
        let cold = self.cold_rebuild()?;
        let mut detail = String::new();
        if cold.lsdb != self.lsdb {
            detail = "LSDB differs from cold recompile".to_string();
        } else {
            let n = self.pristine.node_count();
            let warm_fib = compute_fib(&self.lsdb, n);
            let cold_fib = compute_fib(&cold.lsdb, n);
            if warm_fib != cold_fib {
                detail = "FIB differs from cold recompile".to_string();
            } else {
                'outer: for t in self.current.nodes() {
                    let warm = self.routing.ratios(t);
                    let cold_r = cold.routing.ratios(t);
                    for (a, b) in warm.iter().zip(cold_r) {
                        if a.to_bits() != b.to_bits() {
                            detail = format!(
                                "splitting ratios differ for destination {}",
                                t.index()
                            );
                            break 'outer;
                        }
                    }
                }
            }
        }
        Ok(ColdCheck {
            identical: detail.is_empty(),
            cold_micros: cold.micros,
            detail,
        })
    }

    /// The graph that survives the current failure sets, rebuilt from the
    /// pristine topology (node ids are preserved; edge ids are renumbered
    /// densely over the survivors).
    fn surviving_graph(&self) -> Graph {
        let dead: Vec<EdgeId> = self
            .pristine
            .edges()
            .filter(|&e| {
                let (a, b) = self.pristine.endpoints(e);
                self.failed_links.contains(&canonical(a, b))
                    || self.failed_nodes.contains(&a.index())
                    || self.failed_nodes.contains(&b.index())
            })
            .collect();
        self.pristine.without_edges(&dead)
    }

    /// Shared tail of link/node events: rebuild the surviving graph and its
    /// DAGs, re-solve every destination (all dirty), recompile, and commit
    /// through the delta path with replacement router LSAs.
    fn apply_topology_event(
        &mut self,
        kind: &'static str,
        prune: Option<PruneStats>,
        start: Instant,
    ) -> Result<UpdateOutcome, ServeError> {
        self.current = self.surviving_graph();
        self.dags = build_all_dags(&self.current, DagMode::Augmented)
            .map_err(coyote_core::CoreError::from)?;
        // The LP structure changed with the topology; caches replay the
        // phase-one pivots of the *old* structure, so start fresh (a cold
        // rebuild does the same, which keeps the two paths bit-identical).
        self.caches = (0..self.current.node_count())
            .map(|_| PhaseOneCache::new())
            .collect();
        let dirty: Vec<NodeId> = self.current.nodes().collect();
        for &t in &dirty {
            self.solves[t.index()] = solve_destination(
                &self.current,
                &self.dags[t.index()],
                &self.demands,
                t,
                &mut self.caches[t.index()],
            )?;
        }
        let routing = self.assemble_routing();
        let router_lsas = Lsdb::from_graph(&self.current).router_lsas().to_vec();
        let delta = self.compile_delta(&routing, &dirty, Some(router_lsas))?;
        let demands = self.demands.clone();
        let outcome = self.commit(routing, demands, delta, kind, &dirty, prune, start)?;
        self.event_reopt_micros.push(outcome.reopt_micros);
        Ok(outcome)
    }

    /// Assembles the [`PdRouting`] from the current per-destination flows —
    /// the exact expression [`coyote_core::separable_routing`] uses, so the
    /// incremental and cold paths agree bit for bit.
    fn assemble_routing(&self) -> PdRouting {
        let raw: Vec<Vec<f64>> = self.solves.iter().map(|s| s.flows.clone()).collect();
        PdRouting::from_ratios(&self.current, self.dags.clone(), raw)
    }

    /// Compiles the dirty destinations against `routing` and packages the
    /// changed prefixes (content comparison — a re-solved destination whose
    /// lies came out identical is dropped from the delta) into an
    /// [`LsaDelta`].
    fn compile_delta(
        &self,
        routing: &PdRouting,
        dirty: &[NodeId],
        router_lsas: Option<Vec<coyote_ospf::RouterLsa>>,
    ) -> Result<(LsaDelta, Vec<DestinationLies>), ServeError> {
        let base = Lsdb::from_graph(&self.current);
        let mut updates = Vec::new();
        let mut new_lies = Vec::with_capacity(dirty.len());
        for &t in dirty {
            let per_dest = compile_destination(&self.current, &base, routing, t, self.budget)?;
            if per_dest.lies != self.lies[t.index()].lies {
                updates.push(PrefixUpdate {
                    destination: t,
                    lies: per_dest.lies.clone(),
                    retracted: self.lies[t.index()].lies.len(),
                });
            }
            new_lies.push(per_dest);
        }
        Ok((
            LsaDelta {
                router_lsas,
                updates,
            },
            new_lies,
        ))
    }

    /// Applies the delta to the engine's LSDB and commits all derived state.
    #[allow(clippy::too_many_arguments)]
    fn commit(
        &mut self,
        routing: PdRouting,
        demands: DemandMatrix,
        delta_and_lies: (LsaDelta, Vec<DestinationLies>),
        kind: &'static str,
        dirty: &[NodeId],
        prune: Option<PruneStats>,
        start: Instant,
    ) -> Result<UpdateOutcome, ServeError> {
        let (delta, new_lies) = delta_and_lies;
        // The router-LSA section of the LSDB changes on topology events even
        // when no prefix update survived the content comparison, so the
        // delta must be applied unconditionally.
        self.lsdb = delta.apply(&self.lsdb, self.pristine.node_count())?;
        for (&t, lies) in dirty.iter().zip(new_lies) {
            self.lies[t.index()] = lies;
        }
        self.routing = routing;
        self.demands = demands;
        self.epoch += 1;
        let reopt = start.elapsed();
        coyote_obs::counter("serve.updates", 1);
        coyote_obs::counter(&format!("serve.updates.{kind}"), 1);
        coyote_obs::observe("serve.delta.prefixes", delta.touched_prefixes() as u64);
        coyote_obs::observe("serve.delta.fakes_added", delta.fakes_added() as u64);
        coyote_obs::observe_duration("serve.reopt", reopt);
        Ok(UpdateOutcome {
            epoch: self.epoch,
            kind,
            dirty_destinations: dirty.iter().map(|t| t.index()).collect(),
            delta_prefixes: delta.touched_prefixes(),
            delta_fakes_added: delta.fakes_added(),
            delta_fakes_retracted: delta.fakes_retracted(),
            router_lsas_replaced: delta.router_lsas.is_some(),
            reopt_micros: reopt.as_micros() as u64,
            max_utilization: self.max_utilization(),
            unroutable_volume: self.unroutable_volume(),
            immediate_prune: prune,
        })
    }
}

fn canonical(a: NodeId, b: NodeId) -> (usize, usize) {
    let (x, y) = (a.index(), b.index());
    (x.min(y), x.max(y))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> TeEngine {
        TeEngine::new(&EngineConfig::default()).unwrap()
    }

    #[test]
    fn startup_state_matches_a_cold_rebuild() {
        let e = engine();
        let check = e.verify_against_cold().unwrap();
        assert!(check.identical, "{}", check.detail);
    }

    #[test]
    fn demand_update_dirties_only_the_changed_columns() {
        let mut e = engine();
        let src = e.resolve_node("0").unwrap();
        let dst = e.resolve_node("3").unwrap();
        let old_rate = e.demands().get(src, dst);
        let out = e
            .apply_demand_update(&[DemandUpdate {
                src,
                dst,
                rate: old_rate * 2.0 + 1.0,
            }])
            .unwrap();
        assert_eq!(out.dirty_destinations, vec![dst.index()]);
        let check = e.verify_against_cold().unwrap();
        assert!(check.identical, "{}", check.detail);
    }

    #[test]
    fn noop_demand_update_produces_an_empty_delta() {
        let mut e = engine();
        let src = e.resolve_node("0").unwrap();
        let dst = e.resolve_node("1").unwrap();
        let rate = e.demands().get(src, dst);
        let out = e
            .apply_demand_update(&[DemandUpdate { src, dst, rate }])
            .unwrap();
        assert!(out.dirty_destinations.is_empty());
        assert_eq!(out.delta_prefixes, 0);
    }

    #[test]
    fn link_down_then_up_round_trips() {
        let mut e = engine();
        let (a, b) = e.pristine_graph().endpoints(coyote_graph::EdgeId(0));
        let down = e.apply_link_event(a, b, false).unwrap();
        assert!(down.router_lsas_replaced);
        assert!(down.immediate_prune.is_some());
        assert!(e.verify_against_cold().unwrap().identical);
        let up = e.apply_link_event(a, b, true).unwrap();
        assert!(up.router_lsas_replaced);
        assert!(up.immediate_prune.is_none());
        assert!(e.verify_against_cold().unwrap().identical);
    }

    #[test]
    fn bad_inputs_are_client_errors() {
        let mut e = engine();
        let a = e.resolve_node("0").unwrap();
        assert!(e.resolve_node("no-such-router").is_err());
        assert!(e.apply_link_event(a, a, false).is_err());
        let err = e
            .apply_demand_update(&[DemandUpdate {
                src: a,
                dst: e.resolve_node("1").unwrap(),
                rate: f64::NAN,
            }])
            .unwrap_err();
        assert!(err.is_bad_request());
    }
}
