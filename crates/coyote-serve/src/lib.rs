//! # coyote-serve
//!
//! The serving layer of the COYOTE reproduction: a long-running incremental
//! TE daemon. Where `coyote-bench` runs the pipeline as a batch job, this
//! crate keeps the compiled Fibbing program *in memory* and reacts to demand
//! drift and topology events with incremental re-optimization:
//!
//! * [`engine`] — the [`TeEngine`] state machine: dirty-set tracking, warm
//!   per-destination re-solves ([`coyote_core::incremental`]), per-prefix
//!   recompiles and [`coyote_ospf::LsaDelta`] emission. The engine advances
//!   its own LSDB by *applying the delta it emits*, so the differential
//!   guarantee — delta applied to the old LSDB is bit-identical to a cold
//!   recompile — is the production path, checked by
//!   [`TeEngine::verify_against_cold`].
//! * [`http`] — a dependency-free threaded HTTP/1.1 server exposing
//!   telemetry (`GET /state`, `/program`, `/metrics`) and updates
//!   (`POST /demand`, `/link`, `/node`, `/recompile`, `/shutdown`).
//! * [`json`] — a minimal JSON parser for request bodies (the vendored
//!   `serde_json` stand-in is serialize-only).
//! * [`api`] — the wire types of the JSON responses.
//!
//! The `serve_load` binary is the matching load driver: it hammers a running
//! daemon with seeded demand updates and link events, checks the
//! differential guarantee over HTTP, and writes `BENCH_serve.json`.
//!
//! ```no_run
//! use coyote_serve::{EngineConfig, ServerConfig, Server, TeEngine};
//!
//! let engine = TeEngine::new(&EngineConfig::default()).unwrap();
//! let server = Server::start(engine, &ServerConfig::default()).unwrap();
//! println!("daemon listening on {}", server.addr());
//! server.join();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod api;
pub mod engine;
pub mod error;
pub mod http;
pub mod json;

pub use api::{LatencyStats, LinkUtilization, ProgramResponse, StateResponse};
pub use engine::{
    ColdCheck, ColdState, DemandModel, DemandUpdate, EngineConfig, TeEngine, UpdateOutcome,
};
pub use error::ServeError;
pub use http::{Server, ServerConfig};
pub use json::JsonValue;
