//! Load driver for the `coyote-serve` daemon.
//!
//! Hammers a running daemon with seeded traffic — `GET /state` reads, demand
//! updates, link down/up events — verifies the differential guarantee over
//! HTTP (`POST /recompile` must report `identical: true`), and writes a
//! `BENCH_serve.json` with request throughput, re-optimization latency
//! percentiles, delta sizes and the speedup over the two cold comparators.
//!
//! ```text
//! serve_load --addr 127.0.0.1:7300 --state-requests 50 --demand-updates 8 \
//!            --link-events 2 --seed 1 --out BENCH_serve.json --shutdown
//! ```

use coyote_serve::json::{parse, JsonValue};
use coyote_serve::LatencyStats;
use serde::Serialize;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

struct Cli {
    addr: String,
    state_requests: usize,
    demand_updates: usize,
    link_events: usize,
    seed: u64,
    out: String,
    shutdown: bool,
}

impl Cli {
    fn parse(args: &[String]) -> Result<Cli, String> {
        let mut cli = Cli {
            addr: "127.0.0.1:7300".to_string(),
            state_requests: 50,
            demand_updates: 8,
            link_events: 2,
            seed: 1,
            out: "BENCH_serve.json".to_string(),
            shutdown: false,
        };
        let mut seen: Vec<&'static str> = Vec::new();
        let mut guard = |key: &'static str| -> Result<(), String> {
            if seen.contains(&key) {
                return Err(format!("flag --{key} given more than once"));
            }
            seen.push(key);
            Ok(())
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value = |name: &str| -> Result<String, String> {
                match iter.next() {
                    Some(v) if !v.starts_with("--") => Ok(v.clone()),
                    _ => Err(format!("flag {name} needs a value")),
                }
            };
            match arg.as_str() {
                "--addr" => {
                    guard("addr")?;
                    cli.addr = value("--addr")?;
                }
                "--state-requests" => {
                    guard("state-requests")?;
                    cli.state_requests = value("--state-requests")?
                        .parse()
                        .map_err(|e| format!("--state-requests: {e}"))?;
                }
                "--demand-updates" => {
                    guard("demand-updates")?;
                    cli.demand_updates = value("--demand-updates")?
                        .parse()
                        .map_err(|e| format!("--demand-updates: {e}"))?;
                }
                "--link-events" => {
                    guard("link-events")?;
                    cli.link_events = value("--link-events")?
                        .parse()
                        .map_err(|e| format!("--link-events: {e}"))?;
                }
                "--seed" => {
                    guard("seed")?;
                    cli.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
                }
                "--out" => {
                    guard("out")?;
                    cli.out = value("--out")?;
                }
                "--shutdown" => {
                    guard("shutdown")?;
                    cli.shutdown = true;
                }
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(cli)
    }
}

/// One blocking HTTP/1.1 request; returns `(status, body)`.
fn request(addr: &str, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).map_err(|e| e.to_string())?;
    stream.write_all(body.as_bytes()).map_err(|e| e.to_string())?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).map_err(|e| e.to_string())?;
    let text = String::from_utf8_lossy(&raw);
    let (head, payload) = text
        .split_once("\r\n\r\n")
        .ok_or_else(|| "malformed response".to_string())?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| "missing status code".to_string())?;
    Ok((status, payload.to_string()))
}

fn request_json(addr: &str, method: &str, path: &str, body: &str) -> Result<JsonValue, String> {
    let (status, payload) = request(addr, method, path, body)?;
    if status != 200 {
        return Err(format!("{method} {path} -> HTTP {status}: {payload}"));
    }
    parse(&payload).map_err(|e| format!("{method} {path}: bad JSON reply: {e}"))
}

/// xorshift64* — deterministic driver randomness without a rand dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

#[derive(Serialize)]
struct Bench {
    topology: String,
    nodes: usize,
    state_requests: usize,
    state_requests_per_sec: f64,
    demand_updates: usize,
    demand_reopt: LatencyStats,
    link_events: usize,
    event_reopt: LatencyStats,
    mean_delta_prefixes: f64,
    mean_delta_fakes_added: f64,
    engine_cold_rebuild_micros: u64,
    batch_recompile_micros: Option<u64>,
    event_p99_speedup_vs_engine_cold: Option<f64>,
    event_p99_speedup_vs_batch: Option<f64>,
    differential_identical: bool,
    notes: &'static str,
}

fn run(cli: &Cli) -> Result<(), String> {
    // Wait for the daemon to come up.
    let mut healthy = false;
    for _ in 0..100 {
        if request(&cli.addr, "GET", "/healthz", "").map(|(s, _)| s == 200) == Ok(true) {
            healthy = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    if !healthy {
        return Err(format!("daemon at {} never became healthy", cli.addr));
    }

    let state = request_json(&cli.addr, "GET", "/state", "")?;
    let topology = state
        .get("topology")
        .and_then(|t| t.as_str())
        .unwrap_or("unknown")
        .to_string();
    let nodes = state.get("nodes").and_then(|n| n.as_f64()).unwrap_or(0.0) as usize;
    if nodes < 2 {
        return Err("daemon reports fewer than 2 routers".to_string());
    }
    let links: Vec<(String, String)> = state
        .get("links")
        .and_then(|l| l.as_array())
        .map(|items| {
            items
                .iter()
                .filter_map(|l| {
                    Some((
                        l.get("src")?.as_str()?.to_string(),
                        l.get("dst")?.as_str()?.to_string(),
                    ))
                })
                .collect()
        })
        .unwrap_or_default();

    // Throughput: sequential GET /state.
    let start = Instant::now();
    for _ in 0..cli.state_requests {
        request_json(&cli.addr, "GET", "/state", "")?;
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let rps = cli.state_requests as f64 / elapsed;

    let mut rng = Rng(cli.seed);
    let mut demand_micros = Vec::new();
    let mut event_micros = Vec::new();
    let mut delta_prefixes = Vec::new();
    let mut delta_fakes = Vec::new();
    let mut record = |out: &JsonValue, micros: &mut Vec<u64>| {
        if let Some(m) = out.get("reopt_micros").and_then(|m| m.as_f64()) {
            micros.push(m as u64);
        }
        if let Some(p) = out.get("delta_prefixes").and_then(|p| p.as_f64()) {
            delta_prefixes.push(p);
        }
        if let Some(f) = out.get("delta_fakes_added").and_then(|f| f.as_f64()) {
            delta_fakes.push(f);
        }
    };

    // Seeded demand updates.
    for _ in 0..cli.demand_updates {
        let src = rng.below(nodes as u64);
        let mut dst = rng.below(nodes as u64);
        if dst == src {
            dst = (dst + 1) % nodes as u64;
        }
        let rate = rng.below(2000) as f64 / 100.0;
        let body = format!(
            "{{\"updates\":[{{\"src\":{src},\"dst\":{dst},\"rate\":{rate}}}]}}"
        );
        let out = request_json(&cli.addr, "POST", "/demand", &body)?;
        record(&out, &mut demand_micros);
    }

    // Seeded link down/up pairs (state restored after each pair).
    for _ in 0..cli.link_events {
        if links.is_empty() {
            break;
        }
        let (a, b) = &links[rng.below(links.len() as u64) as usize];
        for up in [false, true] {
            let body = format!("{{\"a\":\"{a}\",\"b\":\"{b}\",\"up\":{up}}}");
            let out = request_json(&cli.addr, "POST", "/link", &body)?;
            record(&out, &mut event_micros);
        }
    }

    // The differential guarantee, checked over HTTP: the incrementally
    // maintained state must be bit-identical to a cold recompile.
    let check = request_json(&cli.addr, "POST", "/recompile", "")?;
    let identical = check
        .get("identical")
        .and_then(|i| i.as_bool())
        .unwrap_or(false);
    let cold_micros = check
        .get("cold_micros")
        .and_then(|c| c.as_f64())
        .unwrap_or(0.0) as u64;
    if !identical {
        return Err(format!(
            "differential check FAILED: {}",
            check
                .get("detail")
                .and_then(|d| d.as_str())
                .unwrap_or("no detail")
        ));
    }

    let final_state = request_json(&cli.addr, "GET", "/state", "")?;
    let batch = final_state
        .get("batch_recompile_micros")
        .and_then(|b| b.as_f64())
        .map(|b| b as u64);

    let event_stats = LatencyStats::of(&event_micros);
    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            0.0
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let event_p99 = event_stats.p99_micros;
    let speedup = move |cold: u64| (event_p99 > 0 && cold > 0).then(|| cold as f64 / event_p99 as f64);
    let bench = Bench {
        topology,
        nodes,
        state_requests: cli.state_requests,
        state_requests_per_sec: rps,
        demand_updates: cli.demand_updates,
        demand_reopt: LatencyStats::of(&demand_micros),
        link_events: cli.link_events * 2,
        event_reopt: event_stats,
        mean_delta_prefixes: mean(&delta_prefixes),
        mean_delta_fakes_added: mean(&delta_fakes),
        engine_cold_rebuild_micros: cold_micros,
        batch_recompile_micros: batch,
        event_p99_speedup_vs_engine_cold: speedup(cold_micros),
        event_p99_speedup_vs_batch: batch.and_then(speedup),
        differential_identical: identical,
        notes: "event latencies are full-network re-opts (a link event dirties every \
                destination: augmented DAGs contain each physical link); the batch \
                comparator is the joint oblivious pipeline the CLI runs per scenario, \
                the engine-cold comparator a from-scratch rebuild of the separable \
                policy itself",
    };
    let json = serde_json::to_string_pretty(&bench).map_err(|e| e.to_string())?;
    std::fs::write(&cli.out, json).map_err(|e| format!("writing {}: {e}", cli.out))?;
    println!(
        "serve_load: {} state reads at {:.0} req/s; demand p99 {}us; event p99 {}us; \
         engine cold {}us; differential identical; wrote {}",
        cli.state_requests,
        rps,
        LatencyStats::of(&demand_micros).p99_micros,
        event_p99,
        cold_micros,
        cli.out
    );

    if cli.shutdown {
        let _ = request(&cli.addr, "POST", "/shutdown", "");
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match Cli::parse(&args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("serve_load: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = run(&cli) {
        eprintln!("serve_load: {e}");
        std::process::exit(1);
    }
}
