//! Uncertainty sweep on a real backbone: how robust is each TE scheme when
//! the operator's demand estimate is off by a growing margin?
//!
//! ```text
//! cargo run --release --example uncertainty_sweep [topology] [max_margin]
//! ```
//!
//! This is the workload of the paper's Figs. 6–8: a gravity base demand
//! matrix on a Topology-Zoo backbone, an uncertainty margin `x` (the real
//! demand of every pair may be anywhere in `[base/x, base·x]`), and four
//! schemes — ECMP, the demands-aware optimum for the base matrix, COYOTE
//! with no knowledge, and COYOTE optimized for the margin box.

use coyote::core::prelude::*;
use coyote::topology::zoo;
use coyote::traffic::{GravityModel, UncertaintySet};

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let topology_name = args.first().map(String::as_str).unwrap_or("Abilene");
    let max_margin: f64 = args
        .get(1)
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(3.0)
        .clamp(1.0, 5.0);
    run(topology_name, max_margin)
}

/// The sweep for one topology and maximum margin; split from `main` so the
/// `examples_smoke` integration test can drive it without going through CLI
/// argument parsing.
pub fn run(topology_name: &str, max_margin: f64) -> Result<(), Box<dyn std::error::Error>> {
    let topology = zoo::by_name(topology_name).ok_or_else(|| {
        format!("unknown topology {topology_name:?}; try Abilene, Geant, NSF, ...")
    })?;
    let mut graph = topology.to_graph()?;
    graph.set_inverse_capacity_weights(10.0);
    println!("{}", graph.summary(&topology.name));

    let base = GravityModel::default().generate(&graph);
    let dags = build_all_dags(&graph, DagMode::Augmented)?;

    println!(
        "{:>7}  {:>8}  {:>8}  {:>11}  {:>14}",
        "margin", "ECMP", "Base-opt", "COYOTE-obl", "COYOTE-partial"
    );

    let mut margin = 1.0;
    while margin <= max_margin + 1e-9 {
        let uncertainty = UncertaintySet::from_margin(&base, margin);
        let evaluation = EvaluationSet::build(
            &graph,
            &dags,
            &uncertainty,
            Some(&base),
            &EvaluationOptions::default(),
        )?;

        let ecmp = ecmp_routing(&graph)?;
        let (base_routing, _) = optimal_routing_within_dags(&graph, &dags, &base)?;
        let cfg = CoyoteConfig::fast();
        let obl = optimize_splitting_with_working_set(
            &graph,
            dags.clone(),
            &UncertaintySet::oblivious(graph.node_count()),
            Some(&base),
            &cfg,
            evaluation.clone(),
        )?;
        let partial = optimize_splitting_with_working_set(
            &graph,
            dags.clone(),
            &uncertainty,
            Some(&base),
            &cfg,
            evaluation.clone(),
        )?;

        println!(
            "{:>7.1}  {:>8.2}  {:>8.2}  {:>11.2}  {:>14.2}",
            margin,
            evaluation.performance_ratio(&graph, &ecmp),
            evaluation.performance_ratio(&graph, &base_routing),
            evaluation.performance_ratio(&graph, &obl.routing),
            evaluation.performance_ratio(&graph, &partial.routing),
        );
        margin += 1.0;
    }

    println!();
    println!("Values are worst-case link utilization relative to the demands-aware");
    println!("optimum within the same DAGs (1.00 = as good as knowing the traffic).");
    Ok(())
}
