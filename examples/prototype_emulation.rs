//! The prototype experiment (Section VII / Fig. 12) as a runnable example:
//! emulate the three traffic phases on the 1 Mbps testbed topology and
//! compare the packet-drop rate of the traditional TE configurations with
//! COYOTE's per-prefix DAGs.
//!
//! ```text
//! cargo run --release --example prototype_emulation
//! ```

use coyote::sim::scenario::{run_all, PHASES};

pub fn main() {
    println!("prototype topology: s1, s2, t — every link 1 Mbps");
    println!("traffic phases (s1->t1, s2->t2): {:?}", PHASES);
    println!();

    let results = run_all();
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "scheme", "phase 1", "phase 2", "phase 3", "worst drop", "cumulative"
    );
    for r in &results {
        println!(
            "{:<8} {:>9.1}% {:>9.1}% {:>9.1}% {:>11.1}% {:>11.1}%",
            r.scheme,
            100.0 * r.phases[0].drop_rate,
            100.0 * r.phases[1].drop_rate,
            100.0 * r.phases[2].drop_rate,
            100.0 * r.worst_drop_rate(),
            100.0 * r.cumulative_drop_rate(),
        );
    }

    println!();
    println!("Every forwarding configuration achievable with a single shared DAG (TE1-TE3)");
    println!("drops 25-50% of the traffic in at least one phase; COYOTE's per-prefix lies");
    println!("split each prefix at a different router and deliver everything.");
}
