//! From optimized ratios to router state: compute the OSPF "lies" (fake
//! nodes / virtual links) that realize a COYOTE configuration, bound the FIB
//! blow-up, and verify the realized forwarding state.
//!
//! ```text
//! cargo run --release --example fibbing_deployment [topology] [budget]
//! ```
//!
//! This walks the deployment half of the paper (Section V-D and Fig. 10):
//! COYOTE's fine-grained splitting ratios are approximated by replicating
//! ECMP next-hop entries through fake advertisements, under an operator
//! budget of FIB entries per (router, prefix).

use coyote::core::prelude::*;
use coyote::ospf::{compute_program, realized_routing, verify_program, VirtualLinkBudget};
use coyote::topology::zoo;
use coyote::traffic::{GravityModel, UncertaintySet};

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let topology_name = args.first().map(String::as_str).unwrap_or("Abilene");
    let budget: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    run(topology_name, budget)
}

/// The deployment walk-through for one topology and FIB budget; split from
/// `main` so the `examples_smoke` integration test can drive it without
/// going through CLI argument parsing.
pub fn run(topology_name: &str, budget: usize) -> Result<(), Box<dyn std::error::Error>> {
    let topology =
        zoo::by_name(topology_name).ok_or_else(|| format!("unknown topology {topology_name:?}"))?;
    let mut graph = topology.to_graph()?;
    graph.set_inverse_capacity_weights(10.0);

    // 1. Optimize COYOTE for a 2x uncertainty margin around a gravity matrix.
    let base = GravityModel::default().generate(&graph);
    let uncertainty = UncertaintySet::from_margin(&base, 2.0);
    let result = coyote(&graph, &uncertainty, Some(&base), &CoyoteConfig::fast())?;
    println!(
        "{}: optimized splitting ratios (working-set ratio {:.2})",
        topology.name, result.working_set_ratio
    );

    // 2. Translate to OSPF lies under the FIB budget.
    for entries in [3usize, budget.max(3), 64] {
        let vl = if entries >= 64 {
            VirtualLinkBudget::unlimited()
        } else {
            VirtualLinkBudget::per_prefix(entries)
        };
        let program = compute_program(&graph, &result.routing, vl)?;
        let report = verify_program(&graph, &result.routing, &program)?;
        let realized = realized_routing(&graph, &program)?;

        // 3. Evaluate the *realized* configuration exactly like the target.
        let dags = build_all_dags(&graph, DagMode::Augmented)?;
        let evaluation = EvaluationSet::build(
            &graph,
            &dags,
            &uncertainty,
            Some(&base),
            &EvaluationOptions::default(),
        )?;
        let ratio = evaluation.performance_ratio(&graph, &realized);

        let label = if entries >= 64 {
            "ideal (unbounded)".to_string()
        } else {
            format!("{entries} entries/prefix")
        };
        println!(
            "  {:<18}: {} fake nodes, {} router-prefix pairs lied to, max split error {:.3}, DAGs match: {}, ratio {:.2}",
            label,
            program.stats.fake_nodes,
            program.stats.lied_router_prefix_pairs,
            report.max_split_error,
            report.dags_match,
            ratio,
        );
    }

    println!();
    println!("Larger FIB budgets approximate the optimized splits more closely; even 3");
    println!("entries per prefix already captures most of COYOTE's gain over ECMP (Fig. 10).");
    Ok(())
}
