//! Quickstart: run COYOTE end-to-end on the paper's running example.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! The example builds the Fig. 1 network (two users sending to one target
//! over unit-capacity links), asks COYOTE for splitting ratios that are
//! robust to *any* demand combination within the users' 0–2 Mbps bounds, and
//! compares the worst-case link utilization against traditional ECMP and
//! against the analytic optimum of Appendix B (the inverse golden ratio).

use coyote::core::example_fig1;
use coyote::core::prelude::*;

pub fn main() -> Result<(), CoreError> {
    // 1. The topology and the operator's uncertainty bounds.
    let (graph, nodes) = example_fig1::topology();
    let uncertainty = example_fig1::uncertainty(&nodes);
    println!("topology: {}", graph.summary("fig1"));

    // 2. COYOTE: augmented DAGs + optimized splitting ratios.
    let result = coyote(&graph, &uncertainty, None, &CoyoteConfig::default())?;
    result.routing.validate(&graph).expect("valid PD routing");
    println!(
        "COYOTE optimized the splitting ratios over {} demand matrices in {} rounds",
        result.working_set_size, result.rounds
    );

    // 3. Exact worst-case performance (the oblivious performance ratio),
    //    computed with the slave LP of Appendix C.
    let coyote_worst = performance_ratio_exact(
        &graph,
        &result.routing,
        &uncertainty,
        RoutabilityScope::AllEdges,
        None,
    )?;
    let ecmp = ecmp_routing(&graph)?;
    let ecmp_worst = performance_ratio_exact(
        &graph,
        &ecmp,
        &uncertainty,
        RoutabilityScope::AllEdges,
        None,
    )?;

    println!();
    println!("worst-case link over-subscription vs the demands-aware optimum:");
    println!("  traditional ECMP : {:.3}", ecmp_worst.ratio);
    println!("  COYOTE           : {:.3}", coyote_worst.ratio);
    println!(
        "  analytic optimum : {:.3}  (golden-ratio split, Appendix B)",
        example_fig1::OPTIMAL_WORST_UTILIZATION
    );

    // 4. Show the splitting ratios COYOTE chose at the two decision points.
    let s1s2 = graph.find_edge(nodes.s1, nodes.s2).unwrap();
    let s2t = graph.find_edge(nodes.s2, nodes.t).unwrap();
    println!();
    println!(
        "COYOTE splits at s1 towards s2: {:.3} (optimal {:.3})",
        result.routing.ratio(nodes.t, s1s2),
        example_fig1::INVERSE_GOLDEN_RATIO
    );
    println!(
        "COYOTE splits at s2 towards t : {:.3} (optimal {:.3})",
        result.routing.ratio(nodes.t, s2t),
        example_fig1::INVERSE_GOLDEN_RATIO
    );

    Ok(())
}
