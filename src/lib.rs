//! # coyote — facade crate
//!
//! One-stop re-export of the COYOTE traffic-engineering reproduction
//! ("Lying Your Way to Better Traffic Engineering", CoNEXT 2016).
//!
//! The individual crates can be used independently; this facade re-exports
//! them under short module names so that examples and downstream users can
//! depend on a single crate:
//!
//! * [`graph`] — directed capacitated graphs, shortest paths, DAGs, max-flow.
//! * [`lp`] — the dense two-phase simplex LP solver.
//! * [`gp`] — geometric-programming / log-space convex optimization toolkit.
//! * [`traffic`] — demand matrices (gravity, bimodal) and uncertainty sets.
//! * [`topology`] — backbone topologies (Topology Zoo reconstructions).
//! * [`core`] — COYOTE itself: DAG construction, splitting optimization,
//!   ECMP and demands-aware baselines, performance-ratio evaluation.
//! * [`ospf`] — the OSPF/ECMP + Fibbing substrate (fake LSAs, virtual
//!   next-hops) that turns COYOTE's ratios into deployable router state.
//! * [`sim`] — the flow-level emulator used by the prototype experiment.
//! * [`serve`] — the long-running incremental TE daemon: an HTTP/JSON
//!   control plane that holds the compiled Fibbing program in memory and
//!   reacts to demand drift and link/node events with dirty-set re-solves
//!   and per-prefix LSA deltas (`experiments serve`).
//! * [`runtime`] — the scoped worker pool / ordered `par_map` the
//!   experiment harness uses to fan scenario evaluations across cores.
//! * [`obs`] — zero-dependency spans/counters/histograms wired through the
//!   whole pipeline; exports chrome://tracing traces and flat metrics
//!   summaries (`experiments … --profile`).
//! * [`bench`](mod@bench) — the experiment harness itself: scenario grid, parallel
//!   sweep engine, and the full-stack conformance engine that drives every
//!   sweep cell through compile → realized Fibbing routing → simulation.
//!
//! See `examples/quickstart.rs` for an end-to-end walk-through.
//!
//! ## Quick start
//!
//! ```
//! use coyote::core::prelude::*;
//! use coyote::traffic::DemandMatrix;
//!
//! // The paper's running example (Fig. 1a) with its 0–2 Mbps user bounds.
//! let (graph, nodes) = coyote::core::example_fig1::topology();
//! let uncertainty = coyote::core::example_fig1::uncertainty(&nodes);
//!
//! // COYOTE's pipeline: augmented DAGs + worst-case-optimized splitting.
//! let result = coyote(&graph, &uncertainty, None, &CoyoteConfig::fast()).unwrap();
//! result.routing.validate(&graph).unwrap();
//!
//! // Both COYOTE and the ECMP baseline route this demand within twice the
//! // unit capacities (COYOTE optimizes the *worst case* over the whole
//! // uncertainty set, not any single matrix).
//! let ecmp = ecmp_routing(&graph).unwrap();
//! let dm = DemandMatrix::from_pairs(4, &[(nodes.s1, nodes.t, 2.0)]);
//! assert!(result.routing.max_link_utilization(&graph, &dm) <= 2.0);
//! assert!(ecmp.max_link_utilization(&graph, &dm) <= 2.0);
//! ```

#![warn(missing_docs)]

pub use coyote_bench as bench;
pub use coyote_core as core;
pub use coyote_gp as gp;
pub use coyote_graph as graph;
pub use coyote_lp as lp;
pub use coyote_obs as obs;
pub use coyote_ospf as ospf;
pub use coyote_runtime as runtime;
pub use coyote_serve as serve;
pub use coyote_sim as sim;
pub use coyote_topology as topology;
pub use coyote_traffic as traffic;
