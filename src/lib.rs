//! # coyote — facade crate
//!
//! One-stop re-export of the COYOTE traffic-engineering reproduction
//! ("Lying Your Way to Better Traffic Engineering", CoNEXT 2016).
//!
//! The individual crates can be used independently; this facade re-exports
//! them under short module names so that examples and downstream users can
//! depend on a single crate:
//!
//! * [`graph`] — directed capacitated graphs, shortest paths, DAGs, max-flow.
//! * [`lp`] — the dense two-phase simplex LP solver.
//! * [`gp`] — geometric-programming / log-space convex optimization toolkit.
//! * [`traffic`] — demand matrices (gravity, bimodal) and uncertainty sets.
//! * [`topology`] — backbone topologies (Topology Zoo reconstructions).
//! * [`core`] — COYOTE itself: DAG construction, splitting optimization,
//!   ECMP and demands-aware baselines, performance-ratio evaluation.
//! * [`ospf`] — the OSPF/ECMP + Fibbing substrate (fake LSAs, virtual
//!   next-hops) that turns COYOTE's ratios into deployable router state.
//! * [`sim`] — the flow-level emulator used by the prototype experiment.
//!
//! See `examples/quickstart.rs` for an end-to-end walk-through.

#![warn(missing_docs)]

pub use coyote_core as core;
pub use coyote_gp as gp;
pub use coyote_graph as graph;
pub use coyote_lp as lp;
pub use coyote_ospf as ospf;
pub use coyote_sim as sim;
pub use coyote_topology as topology;
pub use coyote_traffic as traffic;
